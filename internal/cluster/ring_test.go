package cluster

import (
	"fmt"
	"testing"
)

// ringKeys is a synthetic shard-key population large enough to expose
// placement skew: 1000 keys in the plan's "bench#gN" shape.
func ringKeys() []string {
	keys := make([]string, 0, 1000)
	for i := 0; i < 250; i++ {
		for g := 0; g < 4; g++ {
			keys = append(keys, fmt.Sprintf("bench%03d#g%d", i, g))
		}
	}
	return keys
}

// TestRingBalance: with the default replica count each node's key share
// stays within a tolerance band of the fair share.
func TestRingBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
		}
		r := NewRing(nodes, 0)
		count := map[string]int{}
		keys := ringKeys()
		for _, k := range keys {
			count[r.Owner(k)]++
		}
		fair := float64(len(keys)) / float64(n)
		for _, node := range nodes {
			got := float64(count[node])
			// 64 vnodes/node gives stddev around 12% of fair share; 2x fair
			// (and non-zero) catches a broken hash without being flaky.
			if got == 0 || got > 2*fair {
				t.Errorf("%d nodes: %s owns %d keys, fair share %.0f", n, node, count[node], fair)
			}
		}
	}
}

// TestRingMinimalChurn: removing one node reassigns only its keys; every
// other key keeps its owner — the property the coordinator's node-death
// rebalance relies on so surviving caches stay hot.
func TestRingMinimalChurn(t *testing.T) {
	nodes := []string{"http://a:8080", "http://b:8080", "http://c:8080", "http://d:8080"}
	r := NewRing(nodes, 0)
	dead := nodes[2]
	alive := func(n string) bool { return n != dead }
	moved := 0
	for _, k := range ringKeys() {
		before := r.Owner(k)
		after := r.OwnerAmong(k, alive)
		if before != dead {
			if after != before {
				t.Fatalf("key %s moved %s -> %s though its owner survived", k, before, after)
			}
			continue
		}
		if after == dead {
			t.Fatalf("key %s still owned by dead node", k)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("dead node owned no keys; test exercised nothing")
	}

	// OwnerAmong must agree with a ring built from only the survivors:
	// failover is the same pure function as membership change.
	survivors := NewRing([]string{nodes[0], nodes[1], nodes[3]}, 0)
	for _, k := range ringKeys() {
		if got, want := r.OwnerAmong(k, alive), survivors.Owner(k); got != want {
			t.Fatalf("key %s: OwnerAmong = %s, survivor ring = %s", k, got, want)
		}
	}
}

// TestRingOrderIndependence: ownership is a pure function of the node set,
// not the order endpoints were listed.
func TestRingOrderIndependence(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 32)
	b := NewRing([]string{"n3", "n1", "n2"}, 32)
	for _, k := range ringKeys()[:100] {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %s owner depends on node order: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingAssignBounded: the bounded-load assignment spreads any key set —
// even one smaller than the fleet would clump under raw ownership — so no
// node exceeds ceil(K/E) keys, the result is deterministic in key order, and
// dead nodes get nothing.
func TestRingAssignBounded(t *testing.T) {
	nodes := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r := NewRing(nodes, 0)

	// Tiny key set (the real failure mode: 2 benches × 2 daemons clumped).
	for k := 2; k <= 6; k++ {
		keys := make([]string, k)
		for i := range keys {
			keys[i] = fmt.Sprintf("bench%d#g0", i)
		}
		assign := r.AssignBounded(keys, nil)
		load := map[string]int{}
		for _, key := range keys {
			owner := assign[key]
			if owner == "" {
				t.Fatalf("k=%d: key %s unassigned", k, key)
			}
			load[owner]++
		}
		capPer := (k + len(nodes) - 1) / len(nodes)
		for n, l := range load {
			if l > capPer {
				t.Fatalf("k=%d: node %s holds %d keys, cap %d (load %v)", k, n, l, capPer, load)
			}
		}
	}

	// Determinism under input permutation: same set, same assignment.
	keys := ringKeys()[:40]
	want := r.AssignBounded(keys, nil)
	rev := make([]string, len(keys))
	for i, k := range keys {
		rev[len(keys)-1-i] = k
	}
	got := r.AssignBounded(rev, nil)
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("key %s: owner depends on input order (%s vs %s)", k, got[k], w)
		}
	}

	// Dead nodes receive nothing; survivors absorb under the tighter cap.
	dead := nodes[1]
	assign := r.AssignBounded(keys, func(n string) bool { return n != dead })
	load := map[string]int{}
	for _, key := range keys {
		if assign[key] == dead {
			t.Fatalf("key %s assigned to dead node", key)
		}
		load[assign[key]]++
	}
	capPer := (len(keys) + 1) / 2
	for n, l := range load {
		if l > capPer {
			t.Fatalf("survivor %s holds %d keys, cap %d", n, l, capPer)
		}
	}

	// Most keys keep their unbounded owner (near-minimal churn): with 1000
	// keys over 3 nodes the cap binds rarely, so >80% must not move.
	all := ringKeys()
	bounded := r.AssignBounded(all, nil)
	same := 0
	for _, k := range all {
		if bounded[k] == r.Owner(k) {
			same++
		}
	}
	if same*5 < len(all)*4 {
		t.Fatalf("bounded assignment moved %d/%d keys off their raw owner", len(all)-same, len(all))
	}

	// All dead: falls back to unfiltered owners rather than dropping keys.
	fb := r.AssignBounded([]string{"x#g0"}, func(string) bool { return false })
	if fb["x#g0"] == "" {
		t.Fatal("all-dead fallback returned empty owner")
	}
}

// TestRingAllDead: with no live node the walk falls back to the unfiltered
// owner instead of spinning or returning "".
func TestRingAllDead(t *testing.T) {
	r := NewRing([]string{"a", "b"}, 8)
	if got := r.OwnerAmong("k", func(string) bool { return false }); got == "" {
		t.Fatal("all-dead fallback returned empty owner")
	}
	var empty Ring
	if got := empty.OwnerAmong("k", nil); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
}
