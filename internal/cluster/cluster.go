// Package cluster shards design-space sweeps across a fleet of intervalsimd
// daemons. A coordinator builds a shard plan keyed by workload (so each
// daemon's trace and overlay caches stay hot), dispatches batches over HTTP
// with health checks, retry with backoff, and 429/Retry-After admission
// pushback, steals work from slow or dead nodes, and merges the result
// stream back into canonical sweep order with exactly-once commit — the
// merged output is deterministic no matter how the fleet behaved.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"intervalsim/internal/service"
	"intervalsim/internal/stats"
)

// errSweepDone cancels in-flight duplicate dispatches once every point has
// committed: a stolen batch still streaming on a slow node has nothing left
// to contribute.
var errSweepDone = errors.New("cluster: sweep complete")

// Options configures a distributed sweep.
type Options struct {
	Endpoints []string // daemon base URLs (host:port accepted)
	Benches   []string // benchmarks to sweep, in output order

	Widths, Depths, ROBs []int // design-space axes, in output order

	Mode   string // "sim" (default), "lockstep", "sampled", or "model"
	Insts  int    // dynamic instructions per point
	Warmup uint64 // warmup instructions per point
	Pred   string // predictor preset for every point ("" = baseline tournament)

	// VPred is the value-predictor preset for every point ("" = no value
	// speculation); FetchRate throttles frontend fetch after low-confidence
	// branches (0 = full rate). Both are validated at daemon admission.
	VPred     string
	FetchRate float64

	// LockstepK is the number of configurations each daemon advances per
	// lockstep set in lockstep mode (0 means the daemon default of 8).
	LockstepK int
	// SampleDetailed/SampleSkip are the systematic-sampling phase lengths,
	// required (both positive) in sampled mode and ignored otherwise.
	SampleDetailed uint64
	SampleSkip     uint64

	// BatchSize is the number of design points per dispatched shard; 0
	// picks a default sized so each endpoint sees several shards.
	BatchSize int
	// PointTimeout bounds each design point on the daemon (0 = none).
	PointTimeout time.Duration
	// Retries is how many times one runner re-dispatches a batch after a
	// transport error before handing it back to the fleet.
	Retries int
	// KeepGoing continues past failed design points; the sweep still
	// reports an error at the end, after emitting every successful row.
	KeepGoing bool
	// StealAfter is how long a batch may be in flight before an idle node
	// steals it; 0 means a 5s default, negative disables stealing.
	StealAfter time.Duration
	// RingReplicas is the consistent-hash ring's virtual-node count per
	// endpoint (0 = default 64).
	RingReplicas int
	// DisablePeerFill stops the coordinator from advertising the fleet to
	// each daemon (the X-Peers header), so daemons compute every artifact
	// locally. Sharing is on by default: it only saves work and the merged
	// output is identical either way.
	DisablePeerFill bool

	HTTP *http.Client                     // optional transport override
	Logf func(format string, args ...any) // optional progress/diagnostic log
}

// NodeStats summarizes one endpoint's contribution to a sweep.
type NodeStats struct {
	Endpoint string
	Healthy  bool // answered the initial probe
	Dead     bool // abandoned mid-sweep after failed health probes
	Batches  int  // dispatches that returned a complete stream
	Points   int  // winning commits at the merger
	Busy     time.Duration

	// Per-batch dispatch latency quantiles (milliseconds).
	BatchP50MS, BatchP99MS float64

	// End-of-sweep scrape of the daemon's /metrics; nil if unreachable.
	Metrics *service.MetricsResponse
}

// MinstPerSec is the node's effective simulation throughput: committed
// points × instructions per point, over the time it spent serving batches.
func (n NodeStats) MinstPerSec(instsPerPoint int) float64 {
	if n.Busy <= 0 {
		return 0
	}
	return float64(n.Points) * float64(instsPerPoint) / n.Busy.Seconds() / 1e6
}

// RunStats is the end-of-sweep fleet summary.
type RunStats struct {
	Points  int // design points in the plan
	OK      int
	Failed  int
	Batches int // batches in the plan
	Stolen  int // steal dispatches issued
	Elapsed time.Duration
	Insts   int
	Nodes   []NodeStats
}

// FleetCaches aggregates the per-daemon cache and peer-fill counters from
// the end-of-sweep /metrics scrapes into one fleet view — the numbers that
// say whether scale-out actually shared work: fleet-wide artifact compute
// counts (duplicates show up as computed > distinct artifacts), peer-fill
// hits, and combined hit rates.
type FleetCaches struct {
	Scraped int // nodes whose /metrics answered

	OverlayHits, OverlayMisses uint64
	TraceHits, TraceMisses     uint64

	TraceFills, OverlayFills         uint64
	TracesComputed, OverlaysComputed uint64
	FillBytesFetched, FillBytesServed uint64
	FillErrors                        uint64
}

// OverlayHitRate is the fleet-combined overlay-cache hit rate.
func (f FleetCaches) OverlayHitRate() float64 {
	if f.OverlayHits+f.OverlayMisses == 0 {
		return 0
	}
	return float64(f.OverlayHits) / float64(f.OverlayHits+f.OverlayMisses)
}

// TraceHitRate is the fleet-combined trace-cache hit rate.
func (f FleetCaches) TraceHitRate() float64 {
	if f.TraceHits+f.TraceMisses == 0 {
		return 0
	}
	return float64(f.TraceHits) / float64(f.TraceHits+f.TraceMisses)
}

// Caches sums the scraped per-node cache and peer-fill counters.
func (rs *RunStats) Caches() FleetCaches {
	var f FleetCaches
	for _, n := range rs.Nodes {
		m := n.Metrics
		if m == nil {
			continue
		}
		f.Scraped++
		f.OverlayHits += m.OverlayCache.Hits
		f.OverlayMisses += m.OverlayCache.Misses
		f.TraceHits += m.TraceCache.Hits
		f.TraceMisses += m.TraceCache.Misses
		f.TraceFills += m.PeerFill.TraceFills
		f.OverlayFills += m.PeerFill.OverlayFills
		f.TracesComputed += m.PeerFill.TracesComputed
		f.OverlaysComputed += m.PeerFill.OverlaysComputed
		f.FillBytesFetched += m.PeerFill.BytesFetched
		f.FillBytesServed += m.PeerFill.BytesServed
		f.FillErrors += m.PeerFill.Errors
	}
	return f
}

// nodeAcc is the mutable per-endpoint bookkeeping behind NodeStats.
type nodeAcc struct {
	mu      sync.Mutex
	healthy bool
	dead    bool
	batches int
	busy    time.Duration
	lat     *stats.Sample
}

func (a *nodeAcc) record(d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.batches++
	a.busy += d
	a.lat.Add(float64(d) / float64(time.Millisecond))
}

// run is the live state of one distributed sweep.
type run struct {
	opts   Options
	mode   string
	sched  *scheduler
	merger *Merger
	ring   *Ring
	keys   []string // distinct shard keys of the plan, in batch order
	cancel context.CancelCauseFunc
	logf   func(string, ...any)
	nodes  map[string]*nodeAcc

	mu       sync.Mutex
	firstErr error
	dead     map[string]bool // nodes down at probe or abandoned mid-sweep
}

// markDead records a node as unusable and rebalances every unfinished
// batch's affinity onto the surviving fleet with the same bounded-load ring
// assignment the plan was built with: the dead node's shard keys move to
// their ring successors, keys of live nodes stay put unless the load bound
// forces a shuffle, so live nodes keep their hot caches.
// planKeys returns the plan's distinct shard keys in batch order — the key
// universe the bounded-load rebalance re-assigns on node death.
func planKeys(p Plan) []string {
	seen := make(map[string]bool)
	var keys []string
	for _, b := range p.Batches {
		if !seen[b.Key] {
			seen[b.Key] = true
			keys = append(keys, b.Key)
		}
	}
	return keys
}

func (r *run) markDead(endpoint string) {
	r.mu.Lock()
	r.dead[endpoint] = true
	dead := make(map[string]bool, len(r.dead))
	for k, v := range r.dead {
		dead[k] = v
	}
	r.mu.Unlock()
	alive := func(n string) bool { return !dead[n] }
	assign := r.ring.AssignBounded(r.keys, alive)
	r.sched.reassign(func(key string) string { return assign[key] })
}

// Run executes a sweep across the fleet, delivering merged rows to emit in
// canonical sweep order as their prefix completes. It returns the fleet
// summary along with the first error: a failed point (after every
// completable row has been emitted when KeepGoing), an incomplete sweep
// (every node died), or a context cancellation.
func Run(ctx context.Context, opts Options, emit func(*Row) error) (*RunStats, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	mode := opts.Mode
	if mode == "" {
		mode = "sim"
	}
	switch mode {
	case "sim", "lockstep", "sampled", "model":
	default:
		return nil, fmt.Errorf("cluster: unknown mode %q (want sim, lockstep, sampled or model)", mode)
	}
	if mode == "sampled" && (opts.SampleDetailed == 0 || opts.SampleSkip == 0) {
		return nil, fmt.Errorf("cluster: sampled mode needs positive SampleDetailed and SampleSkip")
	}
	if opts.Insts <= 0 {
		return nil, fmt.Errorf("cluster: non-positive insts %d", opts.Insts)
	}
	stealAfter := opts.StealAfter
	if stealAfter == 0 {
		stealAfter = 5 * time.Second
	}

	clients := make([]*Client, len(opts.Endpoints))
	bases := make([]string, len(opts.Endpoints))
	for i, ep := range opts.Endpoints {
		clients[i] = NewClient(ep)
		clients[i].HTTP = opts.HTTP
		bases[i] = clients[i].Base
	}
	// The plan's ring is built over the clients' normalized base URLs, so
	// ring ownership, scheduler affinity, and runner identity all use the
	// same node names.
	plan, err := BuildPlan(bases, opts.Benches, opts.Widths, opts.Depths, opts.ROBs, opts.BatchSize, opts.RingReplicas)
	if err != nil {
		return nil, err
	}
	if !opts.DisablePeerFill && len(clients) > 1 {
		for i, c := range clients {
			for j, p := range clients {
				if i != j {
					c.Peers = append(c.Peers, p.Base)
				}
			}
		}
	}
	up := probeFleet(ctx, clients, 2*time.Second)
	healthy := 0
	for _, ok := range up {
		if ok {
			healthy++
		}
	}
	if healthy == 0 {
		return nil, fmt.Errorf("cluster: no healthy endpoints among %d probed", len(clients))
	}

	dctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	r := &run{
		opts:   opts,
		mode:   mode,
		sched:  newScheduler(plan, stealAfter),
		merger: NewMerger(plan.Points, emit),
		ring:   plan.Ring,
		keys:   planKeys(plan),
		cancel: cancel,
		logf:   logf,
		nodes:  make(map[string]*nodeAcc, len(clients)),
		dead:   make(map[string]bool),
	}
	for i, c := range clients {
		r.nodes[c.Base] = &nodeAcc{healthy: up[i], lat: stats.NewSample(1024)}
	}
	// Nodes that failed the initial probe never run; move their shard keys to
	// ring successors now so affinity reflects the live fleet from the start.
	for i, c := range clients {
		if !up[i] {
			r.markDead(c.Base)
		}
	}

	// Steal-age crossings don't signal the scheduler's cond on their own;
	// kick waiting runners periodically so they re-check.
	kick := stealAfter / 4
	if kick < 10*time.Millisecond {
		kick = 10 * time.Millisecond
	}
	go func() {
		t := time.NewTicker(kick)
		defer t.Stop()
		for {
			select {
			case <-dctx.Done():
				r.sched.stop()
				return
			case <-t.C:
				r.sched.kick()
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for i, c := range clients {
		if !up[i] {
			logf("cluster: endpoint %s failed the initial health probe, skipping", c.Base)
			continue
		}
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			r.runEndpoint(dctx, c)
		}(c)
	}
	wg.Wait()
	cancel(errSweepDone)

	rs := r.summary(ctx, clients, plan, time.Since(start))
	if err := r.merger.Err(); err != nil {
		return rs, fmt.Errorf("cluster: emitting rows: %w", err)
	}
	if ctx.Err() != nil {
		return rs, ctx.Err()
	}
	r.mu.Lock()
	firstErr := r.firstErr
	r.mu.Unlock()
	if !r.merger.Done() {
		if !opts.KeepGoing && firstErr != nil {
			return rs, firstErr
		}
		missing := r.merger.Missing()
		return rs, fmt.Errorf("cluster: sweep incomplete: %d of %d points never committed (first missing seq %d)",
			len(missing), plan.Points, missing[0])
	}
	if failed := r.merger.Failed(); failed > 0 {
		return rs, fmt.Errorf("cluster: %d of %d design points failed (first: %v)", failed, plan.Points, firstErr)
	}
	return rs, nil
}

// runEndpoint is one node's dispatch loop: take the next batch (affinity
// first, then anything pending, then steal), stream it, and either commit
// the completion or hand the batch back and re-probe the node's health. A
// node that stays unhealthy is abandoned; the fleet absorbs its work.
func (r *run) runEndpoint(ctx context.Context, c *Client) {
	acc := r.nodes[c.Base]
	for {
		st := r.sched.next(c.Base)
		if st == nil {
			return
		}
		start := time.Now()
		err := r.dispatch(ctx, c, st)
		if err != nil {
			r.sched.fail(st)
			if ctx.Err() != nil {
				return
			}
			r.logf("cluster: %s: batch %d (%s, %d points) failed: %v", c.Base, st.ID, st.Bench, len(st.Specs), err)
			if herr := awaitHealthy(ctx, c, 5); herr != nil {
				r.logf("cluster: abandoning endpoint %s: %v", c.Base, herr)
				acc.mu.Lock()
				acc.dead = true
				acc.mu.Unlock()
				// Rebalance: hand the dead node's shard keys to their ring
				// successors so the fleet absorbs its work by affinity, not
				// only by steal.
				r.markDead(c.Base)
				return
			}
			continue
		}
		r.sched.complete(st)
		acc.record(time.Since(start))
		if done, total, _ := r.sched.stats(); done == total {
			// Unblock stolen duplicates still streaming elsewhere.
			r.cancel(errSweepDone)
		}
	}
}

// dispatch sends one batch to one daemon, retrying transport failures with
// doubling backoff up to Retries times. Result lines commit to the merger as
// they arrive, so a dispatch that dies mid-stream still contributes its
// completed prefix; the retry (or a thief) recomputes the rest and the
// duplicates are discarded.
func (r *run) dispatch(ctx context.Context, c *Client, st *batchState) error {
	req := service.BatchRequest{
		Benchmark: st.Bench,
		Insts:     r.opts.Insts,
		Warmup:    r.opts.Warmup,
		Pred:      r.opts.Pred,
		VPred:     r.opts.VPred,
		FetchRate: r.opts.FetchRate,
		Mode:      r.mode,
		Decompose: r.mode == "sim" || r.mode == "lockstep",
		TimeoutMS: int(r.opts.PointTimeout / time.Millisecond),
		Points:    st.Specs,
	}
	switch r.mode {
	case "lockstep":
		req.LockstepK = r.opts.LockstepK
	case "sampled":
		req.SampleDetailed = r.opts.SampleDetailed
		req.SampleSkip = r.opts.SampleSkip
	}
	backoff := 200 * time.Millisecond
	for attempt := 0; ; attempt++ {
		_, err := c.Batch(ctx, req, func(pt service.BatchPoint) {
			r.commit(c.Base, st.Bench, pt)
		})
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || attempt >= r.opts.Retries {
			return err
		}
		r.logf("cluster: %s: batch %d retry %d after: %v", c.Base, st.ID, attempt+1, err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// commit offers one streamed point to the merger. Losing (duplicate) commits
// are dropped silently — that is the exactly-once guarantee under work
// stealing. A winning commit of a failed point records the sweep's first
// error and, without KeepGoing, stops the fleet.
func (r *run) commit(endpoint, bench string, pt service.BatchPoint) {
	if !r.merger.Commit(pt.Seq, &Row{Bench: bench, Point: pt, Endpoint: endpoint}) {
		return
	}
	if pt.Error == "" {
		return
	}
	err := fmt.Errorf("%s w%d d%d rob%d (seq %d): %s", bench, pt.Width, pt.Depth, pt.ROB, pt.Seq, pt.Error)
	r.logf("cluster: point failed: %v", err)
	r.mu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.mu.Unlock()
	if !r.opts.KeepGoing {
		r.cancel(err)
		r.sched.stop()
	}
}

// summary assembles the fleet report, scraping each node's /metrics for
// cache hit rates and service-side latency.
func (r *run) summary(ctx context.Context, clients []*Client, plan Plan, elapsed time.Duration) *RunStats {
	_, _, stolen := r.sched.stats()
	wins := r.merger.PerEndpoint()
	rs := &RunStats{
		Points:  plan.Points,
		OK:      r.merger.Committed() - r.merger.Failed(),
		Failed:  r.merger.Failed(),
		Batches: len(plan.Batches),
		Stolen:  stolen,
		Elapsed: elapsed,
		Insts:   r.opts.Insts,
	}
	for _, c := range clients {
		acc := r.nodes[c.Base]
		acc.mu.Lock()
		ns := NodeStats{
			Endpoint: c.Base,
			Healthy:  acc.healthy,
			Dead:     acc.dead,
			Batches:  acc.batches,
			Points:   wins[c.Base],
			Busy:     acc.busy,
		}
		qs := acc.lat.Quantiles(0.5, 0.99)
		acc.mu.Unlock()
		ns.BatchP50MS, ns.BatchP99MS = qs[0], qs[1]
		if ns.Healthy && ctx.Err() == nil {
			sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			if m, err := c.Metrics(sctx); err == nil {
				ns.Metrics = &m
			}
			cancel()
		}
		rs.Nodes = append(rs.Nodes, ns)
	}
	sort.Slice(rs.Nodes, func(i, j int) bool { return rs.Nodes[i].Endpoint < rs.Nodes[j].Endpoint })
	return rs
}

// FprintSummary renders the end-of-sweep fleet summary: totals, then one
// line per node with throughput, dispatch latency, and cache hit rates.
func (rs *RunStats) FprintSummary(w io.Writer) {
	fmt.Fprintf(w, "cluster: %d points (%d ok, %d failed) in %s across %d endpoints: %d batches, %d stolen\n",
		rs.Points, rs.OK, rs.Failed, rs.Elapsed.Round(time.Millisecond), len(rs.Nodes), rs.Batches, rs.Stolen)
	var hits, misses uint64
	for _, n := range rs.Nodes {
		state := ""
		switch {
		case !n.Healthy:
			state = " [down at start]"
		case n.Dead:
			state = " [abandoned]"
		}
		fmt.Fprintf(w, "cluster:   %s%s: %d points in %d batches, %.2f Minst/s, batch p50 %.0fms p99 %.0fms",
			n.Endpoint, state, n.Points, n.Batches, n.MinstPerSec(rs.Insts), n.BatchP50MS, n.BatchP99MS)
		if m := n.Metrics; m != nil {
			fmt.Fprintf(w, ", overlay %.0f%% trace %.0f%% hit",
				100*m.OverlayCache.HitRate, 100*m.TraceCache.HitRate)
			hits += m.OverlayCache.Hits + m.TraceCache.Hits
			misses += m.OverlayCache.Misses + m.TraceCache.Misses
		}
		fmt.Fprintln(w)
	}
	if hits+misses > 0 {
		fmt.Fprintf(w, "cluster: fleet caches: %.0f%% hit (%d hits, %d misses)\n",
			100*float64(hits)/float64(hits+misses), hits, misses)
	}
	if f := rs.Caches(); f.TraceFills+f.OverlayFills+f.FillErrors > 0 {
		fmt.Fprintf(w, "cluster: peer fills: %d traces, %d overlays fetched (%.1f MB); computed fleet-wide: %d traces, %d overlays; %d fill errors\n",
			f.TraceFills, f.OverlayFills, float64(f.FillBytesFetched)/1e6,
			f.TracesComputed, f.OverlaysComputed, f.FillErrors)
	}
}
