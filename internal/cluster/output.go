package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"intervalsim/internal/service"
)

// simHeaders / modelHeaders / sampledHeaders mirror cmd/sweep's CSV columns
// exactly; byte parity between a distributed and a single-process sweep
// depends on it. Lockstep mode shares simHeaders: its rows are byte-identical
// to sim rows by construction.
var (
	simHeaders = []string{"width", "depth", "rob", "ipc", "avg_penalty",
		"penalty_frontend", "penalty_drain", "penalty_fu", "penalty_shortd", "penalty_longd"}
	modelHeaders = []string{"width", "depth", "rob", "ipc", "avg_penalty",
		"cpi_base", "cpi_bpred", "cpi_icache", "cpi_longd"}
	sampledHeaders = []string{"width", "depth", "rob", "ipc",
		"cpi", "cpi_lo", "cpi_hi", "cpi_rel_err", "units"}
)

// CSVSink renders merged rows as the same CSV cmd/sweep emits — identical
// headers and format verbs, so a single-benchmark distributed sweep is
// byte-identical to the single-process tool. Sweeping multiple benchmarks
// prepends a "bench" column. Failed points produce no row (cmd/sweep's
// fail-soft convention: errors go to the log and the exit code).
type CSVSink struct {
	w           io.Writer
	mode        string
	multiBench  bool
	wroteHeader bool
}

// NewCSVSink returns a sink writing mode-appropriate CSV to w.
func NewCSVSink(w io.Writer, mode string, multiBench bool) *CSVSink {
	return &CSVSink{w: w, mode: mode, multiBench: multiBench}
}

func (s *CSVSink) header() error {
	s.wroteHeader = true
	hs := simHeaders
	switch s.mode {
	case "model":
		hs = modelHeaders
	case "sampled":
		hs = sampledHeaders
	}
	if s.multiBench {
		hs = append([]string{"bench"}, hs...)
	}
	_, err := fmt.Fprintln(s.w, strings.Join(hs, ","))
	return err
}

// Emit writes one merged row.
func (s *CSVSink) Emit(row *Row) error {
	if !s.wroteHeader {
		if err := s.header(); err != nil {
			return err
		}
	}
	if row.Point.Error != "" {
		return nil
	}
	pt := row.Point
	cells := []string{
		fmt.Sprintf("%d", pt.Width), fmt.Sprintf("%d", pt.Depth), fmt.Sprintf("%d", pt.ROB),
		fmt.Sprintf("%.3f", pt.IPC),
	}
	switch s.mode {
	case "model":
		cells = append(cells,
			fmt.Sprintf("%.2f", pt.AvgPenalty),
			fmt.Sprintf("%.3f", pt.CPIBase),
			fmt.Sprintf("%.3f", pt.CPIBpred),
			fmt.Sprintf("%.3f", pt.CPIICache),
			fmt.Sprintf("%.3f", pt.CPILongData),
		)
	case "sampled":
		cells = append(cells,
			fmt.Sprintf("%.4f", pt.CPI),
			fmt.Sprintf("%.4f", pt.CPILo),
			fmt.Sprintf("%.4f", pt.CPIHi),
			fmt.Sprintf("%.4f", pt.CPIRelErr),
			fmt.Sprintf("%d", pt.SampleUnits),
		)
	default:
		cells = append(cells,
			fmt.Sprintf("%.2f", pt.AvgPenalty),
			fmt.Sprintf("%.2f", pt.PenFrontend),
			fmt.Sprintf("%.2f", pt.PenDrain),
			fmt.Sprintf("%.2f", pt.PenFU),
			fmt.Sprintf("%.2f", pt.PenShortD),
			fmt.Sprintf("%.2f", pt.PenLongD),
		)
	}
	if s.multiBench {
		cells = append([]string{row.Bench}, cells...)
	}
	_, err := fmt.Fprintln(s.w, strings.Join(cells, ","))
	return err
}

// Finish writes the header if no row ever did (an all-failed sweep still
// emits a well-formed, empty CSV, as cmd/sweep does).
func (s *CSVSink) Finish() error {
	if s.wroteHeader {
		return nil
	}
	return s.header()
}

// NDJSONSink streams merged rows as NDJSON, one object per design point
// including failed ones, for downstream tooling that wants raw float64
// values rather than formatted CSV cells.
type NDJSONSink struct {
	enc *json.Encoder
}

// NewNDJSONSink returns a sink writing NDJSON to w.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{enc: json.NewEncoder(w)}
}

type ndjsonRow struct {
	Bench string `json:"bench"`
	service.BatchPoint
}

// Emit writes one merged row.
func (s *NDJSONSink) Emit(row *Row) error {
	return s.enc.Encode(ndjsonRow{Bench: row.Bench, BatchPoint: row.Point})
}
