package cluster

import (
	"fmt"
	"sync"
	"testing"

	"intervalsim/internal/service"
)

// TestMergerOrderedEmission: rows commit in arbitrary order but emit as the
// contiguous prefix in sequence order.
func TestMergerOrderedEmission(t *testing.T) {
	var got []int
	m := NewMerger(5, func(r *Row) error {
		got = append(got, r.Point.Seq)
		return nil
	})
	for _, seq := range []int{3, 1, 0} {
		if !m.Commit(seq, &Row{Point: service.BatchPoint{Seq: seq}}) {
			t.Fatalf("commit %d lost", seq)
		}
	}
	// 0 and 1 are a contiguous prefix; 3 waits on 2.
	if fmt.Sprint(got) != "[0 1]" {
		t.Fatalf("emitted %v, want [0 1]", got)
	}
	m.Commit(4, &Row{Point: service.BatchPoint{Seq: 4}})
	m.Commit(2, &Row{Point: service.BatchPoint{Seq: 2}})
	if fmt.Sprint(got) != "[0 1 2 3 4]" {
		t.Fatalf("emitted %v, want [0 1 2 3 4]", got)
	}
	if !m.Done() || m.Committed() != 5 || m.Failed() != 0 {
		t.Fatalf("done=%v committed=%d failed=%d", m.Done(), m.Committed(), m.Failed())
	}
}

// TestMergerRejectsDuplicatesAndBounds: second commits of a seq and
// out-of-range seqs lose.
func TestMergerRejectsDuplicatesAndBounds(t *testing.T) {
	m := NewMerger(2, nil)
	if !m.Commit(0, &Row{Endpoint: "a"}) {
		t.Fatal("first commit lost")
	}
	if m.Commit(0, &Row{Endpoint: "b"}) {
		t.Fatal("duplicate commit won")
	}
	if m.Commit(-1, &Row{}) || m.Commit(2, &Row{}) {
		t.Fatal("out-of-range commit won")
	}
	if wins := m.PerEndpoint(); wins["a"] != 1 || wins["b"] != 0 {
		t.Fatalf("wins = %v", wins)
	}
	if missing := m.Missing(); len(missing) != 1 || missing[0] != 1 {
		t.Fatalf("missing = %v", missing)
	}
}

// TestMergerExactlyOnceConcurrent is the work-stealing commit race reduced
// to its essentials: many goroutines racing to commit every sequence number
// (as a stolen batch and its original dispatch both completing would), with
// the invariant that each point wins exactly once and emission stays in
// order. Run with -race this doubles as the data-race gate for the commit
// path.
func TestMergerExactlyOnceConcurrent(t *testing.T) {
	const n, writers = 500, 8
	var got []int
	m := NewMerger(n, func(r *Row) error {
		got = append(got, r.Point.Seq)
		return nil
	})

	var wg sync.WaitGroup
	wins := make([]int, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ep := fmt.Sprintf("node-%d", w)
			for seq := 0; seq < n; seq++ {
				if m.Commit(seq, &Row{Endpoint: ep, Point: service.BatchPoint{Seq: seq}}) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()

	total := 0
	for _, w := range wins {
		total += w
	}
	if total != n {
		t.Fatalf("%d wins across writers, want exactly %d", total, n)
	}
	if !m.Done() || m.Committed() != n {
		t.Fatalf("done=%v committed=%d", m.Done(), m.Committed())
	}
	if len(got) != n {
		t.Fatalf("emitted %d rows, want %d", len(got), n)
	}
	for i, seq := range got {
		if seq != i {
			t.Fatalf("emission out of order at %d: got seq %d", i, seq)
		}
	}
	perEp := 0
	for _, c := range m.PerEndpoint() {
		perEp += c
	}
	if perEp != n {
		t.Fatalf("per-endpoint wins sum to %d, want %d", perEp, n)
	}
}
