package cluster

import (
	"sync"

	"intervalsim/internal/service"
)

// Row is one merged sweep result: the benchmark it belongs to, the daemon's
// result line, and the endpoint whose commit won (summary bookkeeping only
// — the winner never appears in the merged output, which must be identical
// no matter which node computed a point).
type Row struct {
	Bench    string
	Point    service.BatchPoint
	Endpoint string
}

// Merger is the exactly-once commit point of a distributed sweep. Results
// arrive from many daemons in arbitrary order — and, under work stealing,
// more than once per point — and leave exactly once each, in global
// sequence order. The first commit of a sequence number wins; a stolen
// batch that later completes finds its points already committed and is
// discarded. Emission is a reorder buffer: row k is emitted as soon as rows
// 0..k-1 have been, so output streams during the sweep instead of arriving
// in one burst at the end.
type Merger struct {
	mu         sync.Mutex
	rows       []*Row
	emitted    int
	committed  int
	failed     int
	emit       func(*Row) error
	emitErr    error
	byEndpoint map[string]int
}

// NewMerger returns a merger for n points, delivering rows in sequence
// order to emit.
func NewMerger(n int, emit func(*Row) error) *Merger {
	return &Merger{
		rows:       make([]*Row, n),
		emit:       emit,
		byEndpoint: make(map[string]int),
	}
}

// Commit offers one result row for global sequence seq. It reports whether
// this commit won: false for duplicates (the point was already committed by
// another — possibly stolen — dispatch) and for out-of-range sequences.
// Winning commits are emitted in order as the contiguous prefix grows.
func (m *Merger) Commit(seq int, row *Row) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if seq < 0 || seq >= len(m.rows) || m.rows[seq] != nil {
		return false
	}
	m.rows[seq] = row
	m.committed++
	if row.Point.Error != "" {
		m.failed++
	}
	m.byEndpoint[row.Endpoint]++
	for m.emitted < len(m.rows) && m.rows[m.emitted] != nil {
		if m.emit != nil && m.emitErr == nil {
			m.emitErr = m.emit(m.rows[m.emitted])
		}
		m.emitted++
	}
	return true
}

// Committed returns how many points have committed so far.
func (m *Merger) Committed() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.committed
}

// Failed returns how many committed points carry errors.
func (m *Merger) Failed() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed
}

// Done reports whether every point has committed (and hence been emitted).
func (m *Merger) Done() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.committed == len(m.rows)
}

// Err returns the first emission error, if any.
func (m *Merger) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.emitErr
}

// PerEndpoint returns how many winning commits each endpoint produced.
func (m *Merger) PerEndpoint() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int, len(m.byEndpoint))
	for k, v := range m.byEndpoint {
		out[k] = v
	}
	return out
}

// Missing returns the sequence numbers that never committed, for error
// reporting when a sweep could not complete.
func (m *Merger) Missing() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []int
	for i, r := range m.rows {
		if r == nil {
			out = append(out, i)
		}
	}
	return out
}
