package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	equal := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			equal++
		}
	}
	if equal > 0 {
		t.Fatalf("split stream collided with parent %d times", equal)
	}
}

func TestKnownAnswer(t *testing.T) {
	// SplitMix64 reference: seed 1234567 produces these first outputs
	// (computed from the published algorithm). Pins the stream forever.
	s := New(1234567)
	want := []uint64{0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := trials / n
	for v, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("value %d appeared %d times, want about %d", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	var sum float64
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of Float64 = %v, want about 0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(9)
	const trials = 100000
	for _, p := range []float64{0, 0.25, 0.5, 0.9, 1} {
		hits := 0
		for i := 0; i < trials; i++ {
			if s.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bool(%v) rate = %v", p, got)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(13)
	const trials = 200000
	for _, p := range []float64{0.1, 0.3, 0.5, 0.9, 1} {
		var sum float64
		for i := 0; i < trials; i++ {
			v := s.Geometric(p)
			if v < 0 {
				t.Fatalf("Geometric(%v) = %d negative", p, v)
			}
			sum += float64(v)
		}
		want := (1 - p) / p
		got := sum / trials
		if math.Abs(got-want) > 0.05*(want+1) {
			t.Errorf("Geometric(%v) mean = %v, want about %v", p, got, want)
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	s := New(17)
	const n, trials = 100, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		v := s.Zipf(n, 1)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[n-1] {
		t.Errorf("Zipf(theta=1) not skewed: first=%d last=%d", counts[0], counts[n-1])
	}
	// theta = 0 must be uniform-ish.
	counts0 := make([]int, n)
	for i := 0; i < trials; i++ {
		counts0[s.Zipf(n, 0)]++
	}
	if counts0[0] > 2*trials/n {
		t.Errorf("Zipf(theta=0) overly skewed: first bucket %d", counts0[0])
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz%32) + 1
		s := New(seed)
		p := make([]int, n)
		s.Perm(p)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricPanicsAndEdge(t *testing.T) {
	s := New(1)
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			s.Geometric(p)
		}()
	}
	if s.Geometric(1) != 0 {
		t.Error("Geometric(1) must be 0")
	}
}

func TestZipfPanicsAndThetaOne(t *testing.T) {
	s := New(2)
	for _, f := range []func(){
		func() { s.Zipf(0, 1) },
		func() { s.Zipf(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	// theta == 1 takes the logarithmic-CDF branch; check range and skew.
	const n, trials = 64, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		v := s.Zipf(n, 1)
		if v < 0 || v >= n {
			t.Fatalf("Zipf(…,1) out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[n-1] {
		t.Errorf("Zipf(theta=1) not skewed: %d vs %d", counts[0], counts[n-1])
	}
	// n == 1 must always return 0 for any theta branch.
	for _, theta := range []float64{0, 0.5, 1, 2} {
		if got := s.Zipf(1, theta); got != 0 {
			t.Errorf("Zipf(1, %v) = %d", theta, got)
		}
	}
}
