// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator and the synthetic workload
// generator.
//
// The standard library's math/rand is avoided deliberately: its generator
// and the stream produced by convenience helpers have changed across Go
// releases, while reproducing the paper's experiments requires traces that
// are bit-identical for a given seed, forever. The implementation here is
// SplitMix64 (Steele, Lea, Flood; public domain reference constants), which
// is trivially seedable, passes BigCrush when used as a 64-bit stream, and
// is more than random enough to drive workload synthesis.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic SplitMix64 pseudo-random generator.
// The zero value is a valid generator seeded with 0. Source is not safe for
// concurrent use; give each goroutine its own (use Split).
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. Distinct seeds yield streams that
// are statistically independent for simulation purposes.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives a new independent Source from s. The derived stream does not
// overlap the parent's continuation in any way that matters statistically:
// the child is seeded with the parent's next output, golden-ratio scrambled.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded output.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		hi, lo := bits.Mul64(s.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric returns a sample from the geometric distribution with success
// probability p, counting the number of failures before the first success
// (support {0, 1, 2, ...}, mean (1-p)/p). It panics unless 0 < p <= 1.
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := s.Float64()
	// Inverse-CDF; guard u == 0 to avoid log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Log(u) / math.Log(1-p))
}

// Zipf returns a sample in [0, n) from a Zipf-like distribution with
// exponent theta (theta = 0 is uniform; larger theta concentrates mass on
// small values). It uses rejection-inversion and is exact for theta >= 0.
// It panics if n <= 0 or theta < 0.
func (s *Source) Zipf(n int, theta float64) int {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if theta < 0 {
		panic("rng: Zipf with negative theta")
	}
	if theta == 0 {
		return s.Intn(n)
	}
	// Harmonic-sum inversion. n is small in all our uses (≤ a few thousand),
	// so an O(log n) search over a cached prefix table would be overkill;
	// approximate inversion via the continuous CDF is exact enough and
	// allocation free.
	if theta == 1 {
		// CDF(x) ∝ ln(1+x); invert.
		u := s.Float64()
		x := math.Exp(u*math.Log(float64(n)+1)) - 1
		i := int(x)
		if i >= n {
			i = n - 1
		}
		return i
	}
	u := s.Float64()
	oneMinus := 1 - theta
	x := math.Pow(u*(math.Pow(float64(n)+1, oneMinus)-1)+1, 1/oneMinus) - 1
	i := int(x)
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// Perm fills dst with a uniformly random permutation of [0, len(dst)).
func (s *Source) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
