package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// ok returns a job that succeeds with value v.
func ok(name string, v int) Job[int] {
	return Job[int]{Name: name, Run: func(context.Context) (int, error) { return v, nil }}
}

func TestAllSucceed(t *testing.T) {
	jobs := make([]Job[int], 20)
	for i := range jobs {
		jobs[i] = ok(fmt.Sprintf("j%d", i), i*i)
	}
	results, err := Run(context.Background(), jobs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Value != i*i || r.Name != fmt.Sprintf("j%d", i) {
			t.Fatalf("result %d = %+v", i, r)
		}
		if r.Attempts != 1 {
			t.Fatalf("result %d took %d attempts", i, r.Attempts)
		}
	}
}

// TestPanicIsolation injects a panicking job into a batch: every other job
// must complete, and the panic must surface as a structured JobError with a
// stack, not a process crash.
func TestPanicIsolation(t *testing.T) {
	jobs := []Job[int]{
		ok("a", 1),
		{Name: "boom", Run: func(context.Context) (int, error) { panic("injected fault") }},
		ok("c", 3),
	}
	results, err := Run(context.Background(), jobs, Options{Workers: 3, KeepGoing: true, Retries: 5})
	if !errors.Is(err, ErrJobsFailed) {
		t.Fatalf("summary err = %v, want ErrJobsFailed", err)
	}
	if results[0].Err != nil || results[0].Value != 1 || results[2].Err != nil || results[2].Value != 3 {
		t.Fatalf("healthy jobs disturbed: %+v", results)
	}
	var je *JobError
	if !errors.As(results[1].Err, &je) {
		t.Fatalf("panic result = %v, want *JobError", results[1].Err)
	}
	if !je.Panicked || je.Job != "boom" || len(je.Stack) == 0 {
		t.Fatalf("JobError = %+v", je)
	}
	if !strings.Contains(je.Error(), "injected fault") {
		t.Fatalf("JobError message = %q", je.Error())
	}
	if results[1].Attempts != 1 {
		t.Fatalf("panicking job retried %d times; panics must not be retried", results[1].Attempts-1)
	}
}

// TestDeadlineWatchdog injects a job that ignores its context and hangs
// forever: the watchdog must abandon it at the deadline with ErrTimeout while
// the rest of the batch completes.
func TestDeadlineWatchdog(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	jobs := []Job[int]{
		ok("a", 1),
		{Name: "hang", Run: func(context.Context) (int, error) {
			<-release // deliberately ignores ctx
			return 0, nil
		}},
		ok("c", 3),
	}
	start := time.Now()
	results, err := Run(context.Background(), jobs, Options{
		Workers: 3, Timeout: 50 * time.Millisecond, KeepGoing: true,
	})
	if !errors.Is(err, ErrJobsFailed) {
		t.Fatalf("summary err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog failed to fire: took %v", elapsed)
	}
	if !errors.Is(results[1].Err, ErrTimeout) {
		t.Fatalf("hung job err = %v, want ErrTimeout", results[1].Err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs disturbed: %+v", results)
	}
}

// TestCooperativeCancellation verifies a job that honors its context returns
// promptly at the deadline.
func TestCooperativeCancellation(t *testing.T) {
	jobs := []Job[int]{{Name: "coop", Run: func(ctx context.Context) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	}}}
	results, err := Run(context.Background(), jobs, Options{Timeout: 20 * time.Millisecond})
	if !errors.Is(err, ErrJobsFailed) {
		t.Fatalf("summary err = %v", err)
	}
	if results[0].Err == nil {
		t.Fatal("cooperative job reported success after cancellation")
	}
}

// TestTransientRetry injects a job that fails twice then succeeds: the
// harness must retry it to success and report the attempt count.
func TestTransientRetry(t *testing.T) {
	var calls atomic.Int32
	jobs := []Job[int]{{Name: "flaky", Run: func(context.Context) (int, error) {
		if calls.Add(1) < 3 {
			return 0, errors.New("transient glitch")
		}
		return 42, nil
	}}}
	results, err := Run(context.Background(), jobs, Options{Retries: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Value != 42 {
		t.Fatalf("flaky job result = %+v", results[0])
	}
	if results[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", results[0].Attempts)
	}
}

// TestRetryExhaustion verifies a permanently failing job consumes exactly
// Retries+1 attempts and reports the final error.
func TestRetryExhaustion(t *testing.T) {
	var calls atomic.Int32
	jobs := []Job[int]{{Name: "doomed", Run: func(context.Context) (int, error) {
		calls.Add(1)
		return 0, errors.New("always broken")
	}}}
	results, err := Run(context.Background(), jobs, Options{Retries: 2, Backoff: time.Millisecond})
	if !errors.Is(err, ErrJobsFailed) {
		t.Fatalf("summary err = %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("job ran %d times, want 3", got)
	}
	if results[0].Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", results[0].Attempts)
	}
}

// TestPermanentErrorSkipsRetry verifies Permanent() suppresses retries.
func TestPermanentErrorSkipsRetry(t *testing.T) {
	sentinel := errors.New("bad config")
	var calls atomic.Int32
	jobs := []Job[int]{{Name: "invalid", Run: func(context.Context) (int, error) {
		calls.Add(1)
		return 0, Permanent(sentinel)
	}}}
	results, _ := Run(context.Background(), jobs, Options{Retries: 5, Backoff: time.Millisecond})
	if got := calls.Load(); got != 1 {
		t.Fatalf("permanent failure ran %d times, want 1", got)
	}
	if !errors.Is(results[0].Err, sentinel) {
		t.Fatalf("errors.Is lost the cause: %v", results[0].Err)
	}
	if !IsPermanent(results[0].Err) {
		t.Fatalf("IsPermanent = false for %v", results[0].Err)
	}
}

// TestFailFastCancelsRemaining verifies that without KeepGoing the first
// failure shuts the pool down: unscheduled jobs report ErrNotRun.
func TestFailFastCancelsRemaining(t *testing.T) {
	n := 64
	jobs := make([]Job[int], n)
	jobs[0] = Job[int]{Name: "fail-first", Run: func(context.Context) (int, error) {
		return 0, errors.New("early failure")
	}}
	for i := 1; i < n; i++ {
		i := i
		jobs[i] = Job[int]{Name: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) (int, error) {
			// Slow enough that the cancellation beats the queue drain.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(10 * time.Millisecond):
				return i, nil
			}
		}}
	}
	results, err := Run(context.Background(), jobs, Options{Workers: 2})
	if !errors.Is(err, ErrJobsFailed) {
		t.Fatalf("summary err = %v", err)
	}
	notRun := 0
	for _, r := range results[1:] {
		if errors.Is(r.Err, ErrNotRun) {
			notRun++
		}
	}
	if notRun == 0 {
		t.Fatal("fail-fast run scheduled every job anyway")
	}
}

// TestKeepGoingRunsEverything verifies fail-soft collection: with KeepGoing
// every job runs and the successes all survive.
func TestKeepGoingRunsEverything(t *testing.T) {
	n := 32
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		if i%5 == 0 {
			jobs[i] = Job[int]{Name: fmt.Sprintf("bad%d", i), Run: func(context.Context) (int, error) {
				return 0, errors.New("injected")
			}}
			continue
		}
		jobs[i] = ok(fmt.Sprintf("j%d", i), i)
	}
	results, err := Run(context.Background(), jobs, Options{Workers: 8, KeepGoing: true})
	if !errors.Is(err, ErrJobsFailed) {
		t.Fatalf("summary err = %v", err)
	}
	for i, r := range results {
		if i%5 == 0 {
			if r.Err == nil {
				t.Fatalf("injected failure %d reported success", i)
			}
			continue
		}
		if r.Err != nil || r.Value != i {
			t.Fatalf("success %d lost: %+v", i, r)
		}
	}
	if got := len(Failed(results)); got != (n+4)/5 {
		t.Fatalf("Failed() returned %d, want %d", got, (n+4)/5)
	}
}

// TestParentCancellation verifies a canceled parent context stops the pool.
func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []Job[int]{ok("a", 1), ok("b", 2)}
	_, err := Run(ctx, jobs, Options{})
	if !errors.Is(err, ErrJobsFailed) {
		t.Fatalf("summary err = %v", err)
	}
}

func TestSummarize(t *testing.T) {
	jobs := []Job[int]{
		ok("fine", 1),
		{Name: "broken", Run: func(context.Context) (int, error) { return 0, errors.New("nope") }},
	}
	results, _ := Run(context.Background(), jobs, Options{KeepGoing: true})
	var sb strings.Builder
	if n := Summarize(&sb, results); n != 1 {
		t.Fatalf("Summarize count = %d", n)
	}
	out := sb.String()
	if !strings.Contains(out, "FAIL broken") || !strings.Contains(out, "nope") {
		t.Fatalf("summary = %q", out)
	}
	if strings.Contains(out, "fine") {
		t.Fatalf("summary mentions a successful job: %q", out)
	}
}

func TestEmptyJobs(t *testing.T) {
	results, err := Run(context.Background(), []Job[int](nil), Options{})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty run: %v, %d results", err, len(results))
	}
}
