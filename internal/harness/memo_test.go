package harness

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMemoSingleFlight checks the core contract: many concurrent Gets for
// one key run the computation exactly once and all observe its result.
func TestMemoSingleFlight(t *testing.T) {
	m := NewMemo[string, int](4)
	var computations atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Get("k", func() (int, error) {
				computations.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Get = (%d, %v), want (42, nil)", v, err)
			}
		}()
	}
	wg.Wait()
	if n := computations.Load(); n != 1 {
		t.Errorf("computation ran %d times, want 1", n)
	}
	if hits, misses := m.Stats(); hits != 15 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 15/1", hits, misses)
	}
}

// TestMemoErrorsCached checks that a failed computation is memoized too:
// the computations here are deterministic, so retrying would fail the same
// way at full cost.
func TestMemoErrorsCached(t *testing.T) {
	m := NewMemo[int, int](4)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		if _, err := m.Get(7, func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
			t.Fatalf("Get error = %v, want %v", err, boom)
		}
	}
	if calls != 1 {
		t.Errorf("failing computation ran %d times, want 1", calls)
	}
}

// TestMemoEviction checks the LRU-ish bound: the least recently used entry
// goes first, a refreshed entry survives, and capacity never overshoots.
func TestMemoEviction(t *testing.T) {
	m := NewMemo[int, int](2)
	get := func(k int) {
		t.Helper()
		if _, err := m.Get(k, func() (int, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get(1)
	get(2)
	get(1) // refresh 1 → 2 is now the LRU
	get(3) // evicts 2
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	_, misses0 := m.Stats()
	get(1) // must still be cached
	get(3)
	if _, misses := m.Stats(); misses != misses0 {
		t.Errorf("refreshed/just-inserted entries were evicted (misses %d → %d)", misses0, misses)
	}
	get(2) // must have been evicted → recompute
	if _, misses := m.Stats(); misses != misses0+1 {
		t.Errorf("expected exactly one recomputation of the evicted key")
	}
}
