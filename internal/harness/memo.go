package harness

import "sync"

// Memo is a bounded, concurrency-safe, single-flight memoization table: the
// sharing primitive behind cross-worker caches (for example the miss-event
// overlay cache in package overlay, or the packed-trace table in package
// experiments). Get computes each key's value exactly once even when many
// workers ask for it simultaneously — late arrivals block on the first
// computation instead of duplicating it — and an LRU-ish bound keeps the
// table from growing without limit across a long sweep.
//
// Values are cached by key forever or until evicted; errors are cached the
// same way (the computations memoized here are deterministic, so retrying a
// failed one would fail identically).
type Memo[K comparable, V any] struct {
	mu        sync.Mutex
	cap       int
	tick      uint64
	entries   map[K]*memoEntry[V]
	hits      uint64
	misses    uint64
	evictions uint64
}

type memoEntry[V any] struct {
	once    sync.Once
	val     V
	err     error
	lastUse uint64
}

// NewMemo returns a Memo holding at most capacity entries (minimum 1).
// Eviction is least-recently-used by Get time; an evicted entry that is
// still being computed stays valid for the goroutines already holding it
// and is simply recomputed on the next Get.
func NewMemo[K comparable, V any](capacity int) *Memo[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Memo[K, V]{cap: capacity, entries: make(map[K]*memoEntry[V])}
}

// Get returns the memoized value for k, invoking compute (outside the table
// lock) only on the first request for a key. Concurrent Gets for the same
// key share one computation.
func (m *Memo[K, V]) Get(k K, compute func() (V, error)) (V, error) {
	m.mu.Lock()
	e, ok := m.entries[k]
	if ok {
		m.hits++
	} else {
		m.misses++
		e = &memoEntry[V]{}
		m.entries[k] = e
	}
	m.tick++
	e.lastUse = m.tick
	if !ok {
		m.evictLocked()
	}
	m.mu.Unlock()

	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// evictLocked drops least-recently-used entries until the bound holds. The
// just-inserted entry carries the newest tick, so it is never the victim.
func (m *Memo[K, V]) evictLocked() {
	for len(m.entries) > m.cap {
		var victim K
		oldest := uint64(0)
		first := true
		for k, e := range m.entries {
			if first || e.lastUse < oldest {
				victim, oldest, first = k, e.lastUse, false
			}
		}
		delete(m.entries, victim)
		m.evictions++
	}
}

// MemoStats is a point-in-time snapshot of a Memo's counters, exported so
// long-lived processes (the intervalsimd daemon's /metrics endpoint) can
// report cache effectiveness without reaching into the table.
type MemoStats struct {
	Hits      uint64 // Gets that found an existing entry
	Misses    uint64 // Gets that created an entry (computations started)
	Evictions uint64 // entries dropped by the LRU bound
	Entries   int    // entries currently cached
}

// HitRate returns Hits / (Hits + Misses), or 0 before the first Get.
func (s MemoStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Counters returns a consistent snapshot of the memo's counters.
func (m *Memo[K, V]) Counters() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{Hits: m.hits, Misses: m.misses, Evictions: m.evictions, Entries: len(m.entries)}
}

// Stats returns how many Gets found an existing entry (hits) versus
// triggered a computation (misses).
func (m *Memo[K, V]) Stats() (hits, misses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// Len returns the current number of cached entries.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
