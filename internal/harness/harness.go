// Package harness runs batches of simulation jobs fail-soft: a context-aware
// worker pool with per-job panic containment, per-attempt deadlines, and
// bounded retry with exponential backoff.
//
// It exists because design-space exploration is an all-night workload: a
// sweep over hundreds of configurations must not lose 199 finished points to
// one pathological one. The harness guarantees
//
//   - isolation: a panicking job becomes a structured *JobError carrying the
//     job name and stack, never a process crash;
//   - boundedness: each attempt runs under an optional deadline, and a job
//     that ignores its context is abandoned (the watchdog reports ErrTimeout
//     and the worker moves on);
//   - fail-soft collection: results are collected by job index, so completed
//     work is always reported in deterministic input order regardless of
//     scheduling, and failures are summarized at the end.
//
// Classify errors with Permanent to suppress retries for failures that can
// never succeed (for example configuration validation errors).
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors. Run's summary error wraps ErrJobsFailed; individual
// Result.Err values wrap ErrTimeout (attempt deadline) or ErrNotRun (pool
// shut down before the job was scheduled) as appropriate.
var (
	// ErrJobsFailed is wrapped by the error Run returns when at least one
	// job failed; the per-job details are in the Result slice.
	ErrJobsFailed = errors.New("harness: jobs failed")

	// ErrTimeout is wrapped by a JobError whose attempt exceeded
	// Options.Timeout. The attempt goroutine may still be running if the
	// job ignores its context; its eventual result is discarded.
	ErrTimeout = errors.New("harness: job deadline exceeded")

	// ErrNotRun is the Err of jobs never scheduled because the pool shut
	// down first (parent context canceled, or a failure without KeepGoing).
	ErrNotRun = errors.New("harness: job not run (pool shut down)")
)

// Job is one unit of work. Run receives a context that is canceled when the
// attempt deadline expires or the pool shuts down; long-running jobs should
// poll it (uarch.RunContext does).
type Job[T any] struct {
	Name string
	Run  func(ctx context.Context) (T, error)
}

// Result is the outcome of one job, at the same index as its job in the
// input slice.
type Result[T any] struct {
	Name     string
	Value    T             // valid only when Err == nil
	Err      error         // nil on success; otherwise a *JobError or ErrNotRun
	Attempts int           // attempts consumed (0 if never scheduled)
	Duration time.Duration // wall-clock across all attempts and backoffs
}

// Options tunes the pool.
type Options struct {
	// Workers caps concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
	// Timeout is the per-attempt deadline; 0 disables it.
	Timeout time.Duration
	// Retries is how many times a transiently failing job is re-attempted
	// after its first failure (so a job runs at most Retries+1 times).
	// Panics, Permanent-wrapped errors, and pool shutdown are never retried.
	Retries int
	// Backoff is the sleep before the first retry, doubling per retry;
	// <= 0 means 100ms. The sleep aborts early on pool shutdown.
	Backoff time.Duration
	// KeepGoing keeps scheduling the remaining jobs after a failure. When
	// false, the first failure cancels the pool: in-flight jobs see their
	// context canceled and unscheduled jobs report ErrNotRun.
	KeepGoing bool
}

// JobError is the structured failure of one job attempt.
type JobError struct {
	Job      string
	Attempt  int    // 1-based attempt that produced this error
	Err      error  // underlying cause (for a panic, the recovered value)
	Panicked bool   // the job panicked rather than returning an error
	Stack    []byte // goroutine stack at the panic site (panics only)
}

func (e *JobError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("harness: job %s panicked (attempt %d): %v", e.Job, e.Attempt, e.Err)
	}
	return fmt.Sprintf("harness: job %s failed (attempt %d): %v", e.Job, e.Attempt, e.Err)
}

func (e *JobError) Unwrap() error { return e.Err }

// permanentError marks a failure that retrying cannot fix.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err to tell the harness not to retry it. errors.Is/As
// still see through to err.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Run executes jobs on a worker pool and returns one Result per job, in job
// order. It always returns the full slice; the error is nil if every job
// succeeded, and wraps ErrJobsFailed otherwise. Run itself never panics and
// never returns early with partial work lost: completed values survive any
// mix of panics, timeouts, and cancellations.
func Run[T any](ctx context.Context, jobs []Job[T], opts Options) ([]Result[T], error) {
	results := make([]Result[T], len(jobs))
	for i := range jobs {
		results[i] = Result[T]{Name: jobs[i].Name, Err: ErrNotRun}
	}
	if len(jobs) == 0 {
		return results, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	poolCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	next := make(chan int)
	go func() {
		defer close(next)
		for i := range jobs {
			select {
			case next <- i:
			case <-poolCtx.Done():
				return
			}
		}
	}()

	var failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = runJob(poolCtx, jobs[i], opts)
				if results[i].Err != nil {
					failed.Add(1)
					if !opts.KeepGoing {
						cancel(results[i].Err)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Jobs never scheduled kept their ErrNotRun prefill; count them too.
	for i := range results {
		if errors.Is(results[i].Err, ErrNotRun) {
			failed.Add(1)
		}
	}
	if n := failed.Load(); n > 0 {
		return results, fmt.Errorf("%w: %d of %d", ErrJobsFailed, n, len(jobs))
	}
	return results, nil
}

// runJob drives one job through its attempts.
func runJob[T any](ctx context.Context, job Job[T], opts Options) Result[T] {
	res := Result[T]{Name: job.Name}
	start := time.Now()
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		v, err := runAttempt(ctx, job, opts.Timeout, attempt)
		res.Value, res.Err = v, err
		if err == nil || attempt > opts.Retries || !retryable(ctx, err) {
			break
		}
		if !sleep(ctx, scaledBackoff(backoff, attempt)) {
			break // pool shut down during backoff; keep the last error
		}
	}
	res.Duration = time.Since(start)
	return res
}

// scaledBackoff doubles the base per completed attempt, capped to avoid
// overflow and absurd sleeps.
func scaledBackoff(base time.Duration, attempt int) time.Duration {
	shift := attempt - 1
	if shift > 10 {
		shift = 10
	}
	return base << shift
}

// sleep waits for d or until ctx is done; it reports whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// retryable reports whether a failed attempt is worth repeating: not when
// the pool itself is shutting down, the job panicked (assumed
// deterministic), or the error was marked Permanent.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var je *JobError
	if errors.As(err, &je) && je.Panicked {
		return false
	}
	return !IsPermanent(err)
}

// runAttempt executes one attempt under the optional deadline, containing
// panics. The attempt body runs in its own goroutine so a job that ignores
// its context cannot wedge the worker: on deadline the attempt is abandoned
// and reported as ErrTimeout.
func runAttempt[T any](ctx context.Context, job Job[T], timeout time.Duration, attempt int) (T, error) {
	actx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1) // buffered: an abandoned attempt must not block
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: &JobError{
					Job:      job.Name,
					Attempt:  attempt,
					Err:      fmt.Errorf("%v", r),
					Panicked: true,
					Stack:    debug.Stack(),
				}}
			}
		}()
		v, err := job.Run(actx)
		if err != nil {
			ch <- outcome{err: &JobError{Job: job.Name, Attempt: attempt, Err: err}}
			return
		}
		ch <- outcome{v: v}
	}()

	select {
	case o := <-ch:
		return o.v, o.err
	case <-actx.Done():
		var zero T
		err := actx.Err()
		if ctx.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("%w (%v)", ErrTimeout, timeout)
		}
		return zero, &JobError{Job: job.Name, Attempt: attempt, Err: err}
	}
}

// Failed returns the failed results, in job order.
func Failed[T any](results []Result[T]) []Result[T] {
	var out []Result[T]
	for _, r := range results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// Summarize writes a one-line-per-failure report to w and returns the number
// of failures. It prints nothing when every job succeeded.
func Summarize[T any](w io.Writer, results []Result[T]) int {
	failed := Failed(results)
	for _, r := range failed {
		switch {
		case errors.Is(r.Err, ErrNotRun):
			fmt.Fprintf(w, "FAIL %s: not run (pool shut down)\n", r.Name)
		default:
			fmt.Fprintf(w, "FAIL %s (attempts %d): %v\n", r.Name, r.Attempts, r.Err)
		}
	}
	return len(failed)
}
