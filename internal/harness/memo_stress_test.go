package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMemoCounters checks the exported counter snapshot: hits, misses,
// evictions, and live entries, plus the derived hit rate.
func TestMemoCounters(t *testing.T) {
	m := NewMemo[int, int](2)
	if s := m.Counters(); s != (MemoStats{}) {
		t.Fatalf("fresh Counters = %+v, want zeros", s)
	}
	if s := (MemoStats{}); s.HitRate() != 0 {
		t.Fatalf("zero-stats HitRate = %v, want 0", s.HitRate())
	}
	get := func(k int) {
		t.Helper()
		if _, err := m.Get(k, func() (int, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get(1)
	get(1)
	get(2)
	get(3) // over capacity: evicts 1, the least recently used entry
	want := MemoStats{Hits: 1, Misses: 3, Evictions: 1, Entries: 2}
	if s := m.Counters(); s != want {
		t.Fatalf("Counters = %+v, want %+v", s, want)
	}
	if got := m.Counters().HitRate(); got != 0.25 {
		t.Fatalf("HitRate = %v, want 0.25", got)
	}
}

// TestMemoStressSingleFlight hammers one memo from many goroutines asking
// for the same and distinct keys concurrently and asserts the single-flight
// contract holds under contention: each key's computation runs exactly once,
// and every caller of a key observes the same value. Run with -race, this is
// the regression test for the cross-worker sharing the overlay cache and the
// service daemon depend on.
func TestMemoStressSingleFlight(t *testing.T) {
	const (
		keys       = 8
		goroutines = 32
		rounds     = 25
	)
	m := NewMemo[string, int](keys) // capacity == keys: no evictions
	var computes [keys]atomic.Int64

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				// Interleave a shared hot key with per-round distinct keys,
				// phase-shifted per goroutine so arrivals collide.
				k := (g + r) % keys
				key := fmt.Sprintf("key-%d", k)
				v, err := m.Get(key, func() (int, error) {
					computes[k].Add(1)
					return k * 1000, nil
				})
				if err != nil || v != k*1000 {
					t.Errorf("Get(%s) = (%d, %v), want (%d, nil)", key, v, err, k*1000)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()

	for k := 0; k < keys; k++ {
		if n := computes[k].Load(); n != 1 {
			t.Errorf("key %d computed %d times, want exactly once", k, n)
		}
	}
	s := m.Counters()
	if s.Misses != keys {
		t.Errorf("misses = %d, want %d (one per distinct key)", s.Misses, keys)
	}
	if s.Hits != goroutines*rounds-keys {
		t.Errorf("hits = %d, want %d", s.Hits, goroutines*rounds-keys)
	}
	if s.Evictions != 0 {
		t.Errorf("evictions = %d, want 0 (capacity covers all keys)", s.Evictions)
	}
}
