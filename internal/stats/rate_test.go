package stats

import (
	"testing"
	"time"
)

func TestRateSteadyStream(t *testing.T) {
	r := NewRate(30*time.Second, 64)
	base := time.Unix(1000, 0)
	// 11 events, one per 100ms: 10 intervals over 1s => 10 events/s.
	for i := 0; i < 11; i++ {
		r.Add(base.Add(time.Duration(i) * 100 * time.Millisecond))
	}
	now := base.Add(time.Second)
	got := r.PerSecond(now)
	if got < 9.9 || got > 10.1 {
		t.Fatalf("PerSecond = %v, want ~10", got)
	}
}

func TestRateNoEvidence(t *testing.T) {
	r := NewRate(time.Second, 8)
	now := time.Unix(1000, 0)
	if got := r.PerSecond(now); got != 0 {
		t.Fatalf("empty rate = %v, want 0", got)
	}
	r.Add(now)
	if got := r.PerSecond(now); got != 0 {
		t.Fatalf("single-event rate = %v, want 0", got)
	}
}

func TestRateWindowExpiry(t *testing.T) {
	r := NewRate(time.Second, 64)
	base := time.Unix(1000, 0)
	r.Add(base)
	r.Add(base.Add(100 * time.Millisecond))
	// Within the window both events count.
	if got := r.PerSecond(base.Add(200 * time.Millisecond)); got == 0 {
		t.Fatal("windowed events reported no rate")
	}
	// Two seconds later both have aged out.
	if got := r.PerSecond(base.Add(2200 * time.Millisecond)); got != 0 {
		t.Fatalf("stale rate = %v, want 0", got)
	}
}

func TestRateRingEviction(t *testing.T) {
	r := NewRate(time.Minute, 4)
	base := time.Unix(1000, 0)
	// 8 events one second apart; only the last 4 are retained.
	for i := 0; i < 8; i++ {
		r.Add(base.Add(time.Duration(i) * time.Second))
	}
	now := base.Add(7 * time.Second)
	got := r.PerSecond(now)
	// 4 events spanning 3s => 1 event/s.
	if got < 0.99 || got > 1.01 {
		t.Fatalf("PerSecond = %v, want ~1", got)
	}
}

func TestRateBurstSameInstant(t *testing.T) {
	r := NewRate(time.Second, 16)
	now := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		r.Add(now)
	}
	if got := r.PerSecond(now); got <= 0 {
		t.Fatalf("burst rate = %v, want finite positive", got)
	}
}
