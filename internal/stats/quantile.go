package stats

import "sort"

// Sample is a bounded sliding-window sample for quantile estimation: it
// keeps the most recent capacity observations in a ring and computes exact
// quantiles over that window on demand. The daemon's /metrics endpoint uses
// it for request-latency quantiles, where "the last few thousand requests"
// is the population operators actually care about and an unbounded store
// would leak across a long-lived process.
//
// Sample is not safe for concurrent use; callers serialize access (the
// service layer wraps it in its metrics mutex).
type Sample struct {
	buf  []float64 // ring storage, len == filled portion until wrap
	next int       // ring write index once full
	cap  int
	n    uint64 // observations ever Added (window holds min(n, cap))
}

// NewSample returns a Sample windowing the most recent capacity
// observations. It panics for a non-positive capacity.
func NewSample(capacity int) *Sample {
	if capacity <= 0 {
		panic("stats: sample needs positive capacity")
	}
	return &Sample{buf: make([]float64, 0, capacity), cap: capacity}
}

// Add records one observation, evicting the oldest when the window is full.
func (s *Sample) Add(x float64) {
	s.n++
	if len(s.buf) < s.cap {
		s.buf = append(s.buf, x)
		return
	}
	s.buf[s.next] = x
	s.next = (s.next + 1) % s.cap
}

// Count returns the number of observations ever recorded (not the window
// size).
func (s *Sample) Count() uint64 { return s.n }

// Len returns the number of observations currently in the window.
func (s *Sample) Len() int { return len(s.buf) }

// Quantile returns the q-quantile (0 <= q <= 1) of the window using the
// nearest-rank method on a sorted copy, or 0 for an empty window. q is
// clamped into [0, 1].
func (s *Sample) Quantile(q float64) float64 {
	if len(s.buf) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.buf...)
	sort.Float64s(sorted)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	i := int(q*float64(len(sorted))) - 1
	if q == 0 || i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Quantiles returns the quantiles for each q in qs, sorting the window
// once. The result is aligned with qs.
func (s *Sample) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(s.buf) == 0 {
		return out
	}
	sorted := append([]float64(nil), s.buf...)
	sort.Float64s(sorted)
	for j, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		i := int(q*float64(len(sorted))) - 1
		if q == 0 || i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		out[j] = sorted[i]
	}
	return out
}

// Max returns the largest observation in the window, or 0 when empty.
func (s *Sample) Max() float64 {
	max := 0.0
	for i, v := range s.buf {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}
