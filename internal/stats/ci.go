package stats

import "math"

// Student-t two-sided critical values, indexed by confidence level. Rows
// cover df = 1..30 exactly; beyond that the quantile is interpolated in
// 1/df down to the normal limit (the last entry), which is the standard
// table treatment and keeps the function fully deterministic.
var tTable = map[float64][]float64{
	0.90: {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
		1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
		1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
		1.645},
	0.95: {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
		1.960},
	0.99: {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
		3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
		2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
		2.576},
}

// tCrit returns the two-sided Student-t critical value for the given degrees
// of freedom at one of the supported confidence levels (0.90, 0.95, 0.99).
// Unsupported levels snap to the nearest supported one.
func tCrit(df int, confidence float64) float64 {
	best, bestDist := 0.95, math.Inf(1)
	for _, level := range []float64{0.90, 0.95, 0.99} { // fixed order: ties snap low
		if d := math.Abs(level - confidence); d < bestDist {
			best, bestDist = level, d
		}
	}
	row := tTable[best]
	last := len(row) - 1 // row[last] is the df→∞ (normal) limit
	if df < 1 {
		df = 1
	}
	if df <= last {
		return row[df-1]
	}
	// Interpolate linearly in 1/df between the last tabulated df and the
	// normal limit: accurate to <0.2% over the whole range.
	t30 := row[last-1]
	tInf := row[last]
	frac := float64(last) / float64(df) // 1 at df=last, →0 as df→∞
	return tInf + (t30-tInf)*frac
}

// MeanCI returns the sample mean of xs and the half-width of the two-sided
// Student-t confidence interval for the mean at the given confidence level
// (0.90, 0.95 or 0.99; other values snap to the nearest). Fewer than two
// observations carry no variance information and yield a zero half-width.
func MeanCI(xs []float64, confidence float64) (mean, halfWidth float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	mean = r.Mean()
	if n < 2 {
		return mean, 0
	}
	// Sample (n-1) variance: Running tracks the population variant.
	s2 := r.Var() * float64(n) / float64(n-1)
	se := math.Sqrt(s2 / float64(n))
	return mean, tCrit(n-1, confidence) * se
}

// RatioCI returns the ratio estimator R = Σy/Σx over paired observations and
// the half-width of its two-sided Student-t confidence interval at the given
// confidence level, using the standard linearized (Taylor) variance of a
// ratio: Var(R) ≈ s²_d / (n·x̄²) with dᵢ = yᵢ − R·xᵢ.
//
// This is the estimator systematic sampling wants for per-instruction rates
// (CPI, misses per kilo-instruction): units are weighted by their size, so a
// small trailing unit with an extreme per-unit ratio cannot drag the center
// away from the aggregate the full set of units actually measured.
func RatioCI(ys, xs []float64, confidence float64) (ratio, halfWidth float64) {
	n := len(ys)
	if n == 0 || n != len(xs) {
		return 0, 0
	}
	var sy, sx float64
	for i := range ys {
		sy += ys[i]
		sx += xs[i]
	}
	if sx == 0 {
		return 0, 0
	}
	ratio = sy / sx
	if n < 2 {
		return ratio, 0
	}
	xbar := sx / float64(n)
	var sd2 float64
	for i := range ys {
		d := ys[i] - ratio*xs[i]
		sd2 += d * d
	}
	sd2 /= float64(n - 1)
	se := math.Sqrt(sd2/float64(n)) / xbar
	return ratio, tCrit(n-1, confidence) * se
}
