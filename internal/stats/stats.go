// Package stats provides the small statistics toolkit used by the
// experiments: running moments, histograms with linear or logarithmic
// buckets, and (x, y) series with grouped aggregation.
//
// It exists so experiment code states *what* it measures, not how the
// bookkeeping works, and so every figure in EXPERIMENTS.md is produced by
// the same, tested aggregation paths.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates count, mean, variance (Welford), min and max of a
// stream of observations without storing them. The zero value is ready to
// use.
type Running struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// AddN records the same observation n times.
func (r *Running) AddN(x float64, n uint64) {
	for i := uint64(0); i < n; i++ {
		r.Add(x)
	}
}

// Count returns the number of observations.
func (r *Running) Count() uint64 { return r.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (r *Running) Mean() float64 { return r.mean }

// Sum returns the total of all observations.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

// Var returns the population variance, or 0 with fewer than 2 observations.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Stddev returns the population standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Var()) }

// Min returns the smallest observation, or 0 with no observations.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 with no observations.
func (r *Running) Max() float64 { return r.max }

// Merge folds other into r as if all of other's observations had been Added.
func (r *Running) Merge(other *Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *other
		return
	}
	n := r.n + other.n
	d := other.mean - r.mean
	mean := r.mean + d*float64(other.n)/float64(n)
	r.m2 += other.m2 + d*d*float64(r.n)*float64(other.n)/float64(n)
	r.mean = mean
	if other.min < r.min {
		r.min = other.min
	}
	if other.max > r.max {
		r.max = other.max
	}
	r.n = n
}

// Histogram counts observations in fixed-width linear buckets, with an
// overflow bucket for values at or beyond the configured range.
type Histogram struct {
	width    float64
	counts   []uint64
	overflow uint64
	total    uint64
	sum      float64
}

// NewHistogram returns a histogram of nbuckets buckets of the given width
// starting at zero. It panics for non-positive shape parameters.
func NewHistogram(nbuckets int, width float64) *Histogram {
	if nbuckets <= 0 || width <= 0 {
		panic("stats: histogram needs positive bucket count and width")
	}
	return &Histogram{width: width, counts: make([]uint64, nbuckets)}
}

// Add records one observation. Negative values clamp into the first bucket.
func (h *Histogram) Add(x float64) {
	h.total++
	h.sum += x
	i := int(x / h.width)
	switch {
	case i < 0:
		h.counts[0]++
	case i >= len(h.counts):
		h.overflow++
	default:
		h.counts[i]++
	}
}

// Buckets returns the per-bucket counts (excluding overflow).
func (h *Histogram) Buckets() []uint64 { return h.counts }

// Overflow returns the count of observations beyond the last bucket.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Total returns the number of observations recorded.
func (h *Histogram) Total() uint64 { return h.total }

// Mean returns the exact mean of recorded observations.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// BucketStart returns the lower bound of bucket i.
func (h *Histogram) BucketStart(i int) float64 { return float64(i) * h.width }

// CDF returns, for each bucket, the fraction of observations with value
// below the bucket's upper bound. The overflow bucket brings it to 1.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.counts))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if h.total > 0 {
			out[i] = float64(cum) / float64(h.total)
		}
	}
	return out
}

// Log2Histogram counts observations in power-of-two buckets: bucket i holds
// values v with 2^i <= v < 2^(i+1); bucket 0 also holds v < 1.
type Log2Histogram struct {
	counts []uint64
	total  uint64
}

// NewLog2Histogram returns a histogram with nbuckets power-of-two buckets;
// values at or beyond 2^nbuckets land in the last bucket.
func NewLog2Histogram(nbuckets int) *Log2Histogram {
	if nbuckets <= 0 {
		panic("stats: log2 histogram needs positive bucket count")
	}
	return &Log2Histogram{counts: make([]uint64, nbuckets)}
}

// Add records one non-negative observation.
func (h *Log2Histogram) Add(v uint64) {
	h.total++
	i := 0
	for v > 1 && i < len(h.counts)-1 {
		v >>= 1
		i++
	}
	h.counts[i]++
}

// Buckets returns the per-bucket counts.
func (h *Log2Histogram) Buckets() []uint64 { return h.counts }

// Total returns the number of observations recorded.
func (h *Log2Histogram) Total() uint64 { return h.total }

// Fraction returns bucket i's share of all observations.
func (h *Log2Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[i]) / float64(h.total)
}

// Point is one (x, y) pair of a series.
type Point struct {
	X, Y float64
}

// Series is an ordered list of (x, y) points, as plotted in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// GroupedMean aggregates observations keyed by a float x into a Series of
// (x, mean y), sorted by x. It is the workhorse behind "penalty versus
// interval length" style figures.
type GroupedMean struct {
	groups map[float64]*Running
}

// NewGroupedMean returns an empty grouped aggregator.
func NewGroupedMean() *GroupedMean {
	return &GroupedMean{groups: make(map[float64]*Running)}
}

// Add records observation y under group x.
func (g *GroupedMean) Add(x, y float64) {
	r := g.groups[x]
	if r == nil {
		r = &Running{}
		g.groups[x] = r
	}
	r.Add(y)
}

// Count returns the number of observations in group x.
func (g *GroupedMean) Count(x float64) uint64 {
	if r := g.groups[x]; r != nil {
		return r.Count()
	}
	return 0
}

// Series returns (x, mean) points sorted by x.
func (g *GroupedMean) Series(name string) Series {
	xs := make([]float64, 0, len(g.groups))
	for x := range g.groups {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	s := Series{Name: name}
	for _, x := range xs {
		s.Add(x, g.groups[x].Mean())
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice or an
// out-of-range p. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
