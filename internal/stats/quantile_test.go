package stats

import "testing"

func TestSampleQuantileExact(t *testing.T) {
	s := NewSample(100)
	// 1..100 in scrambled insertion order; quantiles must not depend on it.
	for i := 0; i < 100; i++ {
		s.Add(float64((i*37)%100 + 1))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.5, 50}, {0.9, 90}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := s.Max(); got != 100 {
		t.Errorf("Max() = %v, want 100", got)
	}
}

func TestSampleWindowEviction(t *testing.T) {
	s := NewSample(4)
	for _, v := range []float64{100, 200, 300, 1, 2, 3, 4} {
		s.Add(v)
	}
	// Window is the last four observations: 1, 2, 3, 4.
	if got := s.Len(); got != 4 {
		t.Fatalf("Len() = %d, want 4", got)
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
	if got := s.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4 (old values must be evicted)", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(8)
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	if got := s.Max(); got != 0 {
		t.Errorf("empty Max = %v, want 0", got)
	}
	if qs := s.Quantiles(0.5, 0.9); qs[0] != 0 || qs[1] != 0 {
		t.Errorf("empty Quantiles = %v, want zeros", qs)
	}
}

func TestSampleQuantilesAligned(t *testing.T) {
	s := NewSample(10)
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	got := s.Quantiles(0.5, 0.9, 1)
	want := []float64{5, 9, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Quantiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSampleClamps(t *testing.T) {
	s := NewSample(3)
	s.Add(7)
	if got := s.Quantile(-1); got != 7 {
		t.Errorf("Quantile(-1) = %v, want 7", got)
	}
	if got := s.Quantile(2); got != 7 {
		t.Errorf("Quantile(2) = %v, want 7", got)
	}
}

func TestSamplePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSample(0) did not panic")
		}
	}()
	NewSample(0)
}
