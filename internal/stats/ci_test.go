package stats

import (
	"math"
	"testing"
)

func TestTCritTableValues(t *testing.T) {
	cases := []struct {
		df         int
		confidence float64
		want       float64
		tol        float64
	}{
		{1, 0.95, 12.706, 1e-9},
		{10, 0.95, 2.228, 1e-9},
		{30, 0.95, 2.042, 1e-9},
		{60, 0.95, 2.000, 0.01}, // interpolated in 1/df; true value 2.000
		{120, 0.95, 1.980, 0.01},
		{1_000_000, 0.95, 1.960, 1e-3},
		{5, 0.90, 2.015, 1e-9},
		{5, 0.99, 4.032, 1e-9},
		{5, 0.97, 2.571, 1e-9}, // unsupported level, equidistant: snaps to the lower (0.95)
		{5, 0.98, 4.032, 1e-9}, // unsupported level snaps to nearest (0.99)
	}
	for _, c := range cases {
		if got := tCrit(c.df, c.confidence); math.Abs(got-c.want) > c.tol {
			t.Errorf("tCrit(%d, %v) = %v, want %v ± %v", c.df, c.confidence, got, c.want, c.tol)
		}
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	mean, half := MeanCI(xs, 0.95)
	if mean != 5 {
		t.Fatalf("mean = %v, want 5", mean)
	}
	// Sample stddev is sqrt(32/7); SE = stddev/sqrt(8); t(7, .95) = 2.365.
	wantHalf := 2.365 * math.Sqrt(32.0/7.0) / math.Sqrt(8)
	if math.Abs(half-wantHalf) > 1e-9 {
		t.Fatalf("half-width = %v, want %v", half, wantHalf)
	}

	if m, h := MeanCI(nil, 0.95); m != 0 || h != 0 {
		t.Errorf("MeanCI(nil) = %v, %v; want zeros", m, h)
	}
	if m, h := MeanCI([]float64{3.5}, 0.95); m != 3.5 || h != 0 {
		t.Errorf("MeanCI(single) = %v, %v; want 3.5, 0", m, h)
	}
}

func TestRatioCICenterIsAggregate(t *testing.T) {
	// Deliberately unequal units: a tiny unit with an extreme per-unit ratio
	// must not drag the center away from the aggregate.
	ys := []float64{100, 110, 90, 50}
	xs := []float64{50, 55, 45, 5} // last unit: ratio 10 vs aggregate ~2.26
	ratio, half := RatioCI(ys, xs, 0.95)
	wantRatio := (100.0 + 110 + 90 + 50) / (50.0 + 55 + 45 + 5)
	if math.Abs(ratio-wantRatio) > 1e-12 {
		t.Fatalf("ratio = %v, want aggregate %v", ratio, wantRatio)
	}
	if half <= 0 {
		t.Fatalf("half-width = %v, want > 0", half)
	}

	// With identical unit sizes the ratio estimator reduces to the mean of
	// per-unit ratios, and its CI must match MeanCI exactly.
	ys = []float64{10, 12, 11, 9, 13}
	xs = []float64{4, 4, 4, 4, 4}
	ratio, half = RatioCI(ys, xs, 0.95)
	perUnit := make([]float64, len(ys))
	for i := range ys {
		perUnit[i] = ys[i] / xs[i]
	}
	mean, mhalf := MeanCI(perUnit, 0.95)
	if math.Abs(ratio-mean) > 1e-12 || math.Abs(half-mhalf) > 1e-12 {
		t.Fatalf("equal-size units: RatioCI = (%v, %v), MeanCI = (%v, %v)", ratio, half, mean, mhalf)
	}

	if r, h := RatioCI(ys, xs[:3], 0.95); r != 0 || h != 0 {
		t.Errorf("mismatched lengths: got (%v, %v), want zeros", r, h)
	}
}
