package stats

import (
	"math"
	"testing"
	"testing/quick"

	"intervalsim/internal/rng"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.Count() != 0 || r.Mean() != 0 || r.Var() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.Count() != 8 {
		t.Errorf("count = %d", r.Count())
	}
	if !almost(r.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", r.Mean())
	}
	if !almost(r.Var(), 4, 1e-12) {
		t.Errorf("var = %v, want 4", r.Var())
	}
	if !almost(r.Stddev(), 2, 1e-12) {
		t.Errorf("stddev = %v, want 2", r.Stddev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
	if !almost(r.Sum(), 40, 1e-12) {
		t.Errorf("sum = %v, want 40", r.Sum())
	}
}

func TestRunningAddN(t *testing.T) {
	var a, b Running
	a.AddN(3, 5)
	for i := 0; i < 5; i++ {
		b.Add(3)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() {
		t.Fatal("AddN differs from repeated Add")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	f := func(seed uint64, na, nb uint8) bool {
		s := rng.New(seed)
		var all, a, b Running
		for i := 0; i < int(na); i++ {
			x := s.Float64()*100 - 50
			all.Add(x)
			a.Add(x)
		}
		for i := 0; i < int(nb); i++ {
			x := s.Float64()*100 - 50
			all.Add(x)
			b.Add(x)
		}
		a.Merge(&b)
		if a.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		return almost(a.Mean(), all.Mean(), 1e-9) &&
			almost(a.Var(), all.Var(), 1e-9) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 2) // buckets [0,2) [2,4) ... [18,20), overflow >= 20
	for _, x := range []float64{0, 1.9, 2, 5, 19.9, 20, 100, -3} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("total = %d", h.Total())
	}
	b := h.Buckets()
	if b[0] != 3 { // 0, 1.9 and clamped -3
		t.Errorf("bucket 0 = %d, want 3", b[0])
	}
	if b[1] != 1 || b[2] != 1 || b[9] != 1 {
		t.Errorf("buckets = %v", b)
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow())
	}
	if h.BucketStart(3) != 6 {
		t.Errorf("BucketStart(3) = %v", h.BucketStart(3))
	}
	cdf := h.CDF()
	if cdf[9] <= cdf[0] || cdf[9] > 1 {
		t.Errorf("cdf = %v", cdf)
	}
}

func TestHistogramMeanExact(t *testing.T) {
	h := NewHistogram(4, 1)
	xs := []float64{0.5, 1.5, 2.5, 9}
	var sum float64
	for _, x := range xs {
		h.Add(x)
		sum += x
	}
	if !almost(h.Mean(), sum/4, 1e-12) {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, c := range []struct{ n, w int }{{0, 1}, {1, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%d, %d) did not panic", c.n, c.w)
				}
			}()
			NewHistogram(c.n, float64(c.w))
		}()
	}
}

func TestLog2Histogram(t *testing.T) {
	h := NewLog2Histogram(8)
	// bucket 0: 0..1, bucket 1: 2..3, bucket 2: 4..7, ...
	h.Add(0)
	h.Add(1)
	h.Add(2)
	h.Add(3)
	h.Add(4)
	h.Add(255)     // bucket 7
	h.Add(1 << 40) // clamps into last bucket
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	b := h.Buckets()
	if b[0] != 2 || b[1] != 2 || b[2] != 1 || b[7] != 2 {
		t.Errorf("buckets = %v", b)
	}
	if !almost(h.Fraction(0), 2.0/7, 1e-12) {
		t.Errorf("fraction(0) = %v", h.Fraction(0))
	}
}

func TestGroupedMean(t *testing.T) {
	g := NewGroupedMean()
	g.Add(2, 10)
	g.Add(2, 20)
	g.Add(1, 5)
	g.Add(8, 40)
	if g.Count(2) != 2 || g.Count(99) != 0 {
		t.Errorf("counts wrong")
	}
	s := g.Series("x")
	if s.Name != "x" || len(s.Points) != 3 {
		t.Fatalf("series = %+v", s)
	}
	want := []Point{{1, 5}, {2, 15}, {8, 40}}
	for i, p := range want {
		if s.Points[i] != p {
			t.Errorf("point %d = %v, want %v", i, s.Points[i], p)
		}
	}
}

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if len(s.Points) != 2 || s.Points[1] != (Point{3, 4}) {
		t.Errorf("series = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{10, 20}, 50); !almost(got, 15, 1e-9) {
		t.Errorf("interpolated median = %v", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPercentileAgainstSortedProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		s := rng.New(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = s.Float64() * 1000
		}
		p0, p100 := Percentile(xs, 0), Percentile(xs, 100)
		med := Percentile(xs, 50)
		return p0 <= med && med <= p100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
