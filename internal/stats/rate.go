package stats

import "time"

// Rate estimates the recent rate of discrete events — completions per
// second — from their timestamps, over a bounded sliding window. The daemon
// uses it to derive honest Retry-After hints: instead of a constant, the
// 429 response tells the client how long the queue will plausibly take to
// drain at the currently observed service rate.
//
// The estimate is inter-arrival based: with k events in the window spanning
// [oldest, newest], the rate is (k-1)/(newest-oldest). That makes it robust
// right after startup (no division by the full window before it has filled)
// and exact for a steady stream. Fewer than two windowed events means there
// is no evidence of a rate yet, and PerSecond reports 0.
//
// Rate is not safe for concurrent use; callers serialize access (the
// service layer wraps it in its metrics mutex).
type Rate struct {
	window time.Duration
	times  []time.Time // ring storage, len == filled portion until wrap
	next   int         // ring write index once full
	cap    int
}

// NewRate returns a Rate over the most recent capacity events no older than
// window. It panics for a non-positive capacity or window.
func NewRate(window time.Duration, capacity int) *Rate {
	if capacity <= 0 || window <= 0 {
		panic("stats: rate needs positive window and capacity")
	}
	return &Rate{window: window, times: make([]time.Time, 0, capacity), cap: capacity}
}

// Add records one event at time t, evicting the oldest when the ring is
// full.
func (r *Rate) Add(t time.Time) {
	if len(r.times) < r.cap {
		r.times = append(r.times, t)
		return
	}
	r.times[r.next] = t
	r.next = (r.next + 1) % r.cap
}

// PerSecond returns the observed event rate at time now, counting only
// events within the window. It returns 0 when fewer than two windowed
// events exist (no rate evidence yet).
func (r *Rate) PerSecond(now time.Time) float64 {
	cutoff := now.Add(-r.window)
	var (
		count          int
		oldest, newest time.Time
	)
	for _, t := range r.times {
		if t.Before(cutoff) || t.After(now) {
			continue
		}
		if count == 0 || t.Before(oldest) {
			oldest = t
		}
		if count == 0 || t.After(newest) {
			newest = t
		}
		count++
	}
	if count < 2 {
		return 0
	}
	span := newest.Sub(oldest)
	if span <= 0 {
		// All k events landed on the same instant: treat the burst as
		// having taken one clock granule so the rate is finite and large.
		span = time.Millisecond
	}
	return float64(count-1) / span.Seconds()
}
