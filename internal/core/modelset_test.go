package core

import (
	"math"
	"testing"

	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

func modelSetPoint(width, depth, rob int) uarch.Config {
	cfg := uarch.Baseline()
	cfg.Name = "set-point"
	cfg.FetchWidth = width
	cfg.DispatchWidth = width
	cfg.IssueWidth = width
	cfg.CommitWidth = width
	cfg.FrontendDepth = depth
	cfg.ROBSize = rob
	cfg.IQSize = rob / 2
	return cfg
}

// TestModelSetMatchesBuildModel is the sharing-soundness gate: a model
// composed from a ModelSet's shared characteristics (profiled once over the
// maxROB window ladder) must predict the same penalties as a BuildModel
// call dedicated to that point for every occupancy at or above the smallest
// ladder window — exact, because every grid ROB size is an exact ladder
// node and the model never evaluates a characteristic above the requested
// ROB size. Only occupancy 1 may differ (fitted-power-law fallback below
// the smallest window), bounding the CPI difference below 0.1%.
func TestModelSetMatchesBuildModel(t *testing.T) {
	const insts = 40_000
	wc, _ := workload.SuiteConfig("crafty")
	tr, err := trace.ReadAll(workload.MustNew(wc, insts))
	if err != nil {
		t.Fatal(err)
	}
	soa := trace.Pack(tr)
	base := uarch.Baseline()
	ov, err := overlay.Compute(soa, base.Pred, base.Mem)
	if err != nil {
		t.Fatal(err)
	}
	const maxROB = 256
	set, err := NewModelSet(soa, ov, base, maxROB, 5_000, insts)
	if err != nil {
		t.Fatal(err)
	}

	for _, width := range []int{2, 4, 8} {
		for _, depth := range []int{3, 11} {
			for _, rob := range []int{64, 128, 256} {
				cfg := modelSetPoint(width, depth, rob)
				shared, prof, err := set.For(cfg)
				if err != nil {
					t.Fatalf("For(w%d d%d r%d): %v", width, depth, rob, err)
				}
				direct, err := BuildModel(func() trace.Reader { return soa.Reader() },
					cfg, prof.ShortMissRatio(), insts)
				if err != nil {
					t.Fatal(err)
				}
				dedicated, err := FunctionalProfile(tr.Reader(), cfg, 5_000, 0)
				if err != nil {
					t.Fatal(err)
				}
				wantPred, err := direct.PredictCPI(dedicated)
				if err != nil {
					t.Fatal(err)
				}
				gotPred, err := shared.PredictCPI(prof)
				if err != nil {
					t.Fatal(err)
				}
				if rel := math.Abs(gotPred.CPI()-wantPred.CPI()) / wantPred.CPI(); rel > 1e-3 {
					t.Errorf("w%d d%d r%d: shared CPI %.9f vs dedicated %.9f (rel %.2g)",
						width, depth, rob, gotPred.CPI(), wantPred.CPI(), rel)
				}
				for occ := uint64(2); occ <= uint64(rob); occ *= 3 {
					if g, w := shared.MispredictPenalty(occ), direct.MispredictPenalty(occ); math.Abs(g-w) > 1e-12 {
						t.Errorf("w%d d%d r%d occ %d: shared penalty %.9f != dedicated %.9f",
							width, depth, rob, occ, g, w)
					}
				}
			}
		}
	}
}

// TestModelSetRejectsOutsideFamily pins the contract checks: a configuration
// that would silently mis-share a characteristic must be refused.
func TestModelSetRejectsOutsideFamily(t *testing.T) {
	const insts = 5_000
	wc, _ := workload.SuiteConfig("gzip")
	tr, err := trace.ReadAll(workload.MustNew(wc, insts))
	if err != nil {
		t.Fatal(err)
	}
	soa := trace.Pack(tr)
	base := uarch.Baseline()
	ov, err := overlay.Compute(soa, base.Pred, base.Mem)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewModelSet(soa, ov, base, 256, 0, insts)
	if err != nil {
		t.Fatal(err)
	}

	pred := modelSetPoint(4, 5, 128)
	pred.Pred.Kind = "bimodal"
	if _, _, err := set.For(pred); err == nil {
		t.Error("different predictor accepted")
	}
	lat := modelSetPoint(4, 5, 128)
	lat.Mem.Lat.Mem = 500
	if _, _, err := set.For(lat); err == nil {
		t.Error("different memory latency accepted")
	}
	fu := modelSetPoint(4, 5, 128)
	fu.FU = fu.FU.Scale(2)
	if _, _, err := set.For(fu); err == nil {
		t.Error("scaled FU latencies accepted")
	}
	offLadder := modelSetPoint(4, 5, 96)
	if _, _, err := set.For(offLadder); err == nil {
		t.Error("non-ladder ROB size accepted")
	}
	tooBig := modelSetPoint(4, 5, 512)
	if _, _, err := set.For(tooBig); err == nil {
		t.Error("ROB above maxROB accepted")
	}
	counts := modelSetPoint(8, 5, 128) // width scales counts, not latencies
	counts.FU.MemPort.Count = 4
	if _, _, err := set.For(counts); err != nil {
		t.Errorf("count-only FU change rejected: %v", err)
	}

	ovMismatch, err := overlay.Compute(soa, pred.Pred, pred.Mem)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewModelSet(soa, ovMismatch, base, 256, 0, insts); err == nil {
		t.Error("NewModelSet accepted an overlay for a different predictor")
	}
}
