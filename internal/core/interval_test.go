package core

import (
	"testing"
	"testing/quick"

	"intervalsim/internal/cache"
	"intervalsim/internal/rng"
	"intervalsim/internal/uarch"
)

func TestSegmentEmpty(t *testing.T) {
	ivs, err := Segment(nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || !ivs[0].Final || ivs[0].Len() != 100 {
		t.Fatalf("intervals = %+v", ivs)
	}
}

func TestSegmentBasic(t *testing.T) {
	events := []uarch.MissEvent{
		{Kind: uarch.EvBranchMispredict, Index: 9},
		{Kind: uarch.EvICacheMiss, Index: 39, Level: cache.ShortMiss},
		{Kind: uarch.EvLongDMiss, Index: 59, Level: cache.LongMiss},
	}
	ivs, err := Segment(events, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 4 {
		t.Fatalf("got %d intervals", len(ivs))
	}
	want := []Interval{
		{Start: 0, End: 10, Kind: uarch.EvBranchMispredict},
		{Start: 10, End: 40, Kind: uarch.EvICacheMiss, Level: cache.ShortMiss},
		{Start: 40, End: 60, Kind: uarch.EvLongDMiss, Level: cache.LongMiss},
		{Start: 60, End: 100, Final: true},
	}
	for i, w := range want {
		if ivs[i] != w {
			t.Errorf("interval %d = %+v, want %+v", i, ivs[i], w)
		}
	}
	if ivs[0].Len() != 10 || ivs[3].Len() != 40 {
		t.Error("lengths wrong")
	}
}

func TestSegmentUnsortedEvents(t *testing.T) {
	// Long D-miss events are detected out of order by the OoO simulator.
	events := []uarch.MissEvent{
		{Kind: uarch.EvLongDMiss, Index: 50},
		{Kind: uarch.EvBranchMispredict, Index: 10},
	}
	ivs, err := Segment(events, 60)
	if err != nil {
		t.Fatal(err)
	}
	if ivs[0].Kind != uarch.EvBranchMispredict || ivs[1].Kind != uarch.EvLongDMiss {
		t.Errorf("intervals = %+v", ivs)
	}
}

func TestSegmentCollapsesSameIndex(t *testing.T) {
	events := []uarch.MissEvent{
		{Kind: uarch.EvICacheMiss, Index: 20},
		{Kind: uarch.EvBranchMispredict, Index: 20},
	}
	ivs, err := Segment(events, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 2 {
		t.Fatalf("got %d intervals, want 2", len(ivs))
	}
	if ivs[0].Kind != uarch.EvBranchMispredict {
		t.Errorf("collapsed kind = %v, want mispredict priority", ivs[0].Kind)
	}
}

func TestSegmentRejectsOutOfRange(t *testing.T) {
	if _, err := Segment([]uarch.MissEvent{{Index: 100}}, 100); err == nil {
		t.Fatal("event at trace length accepted")
	}
}

func TestSegmentNoFinalWhenEventAtEnd(t *testing.T) {
	ivs, err := Segment([]uarch.MissEvent{{Kind: uarch.EvBranchMispredict, Index: 99}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 1 || ivs[0].Final {
		t.Fatalf("intervals = %+v", ivs)
	}
}

// Property: intervals exactly tile [0, N) for any event set.
func TestSegmentTilesProperty(t *testing.T) {
	f := func(seed uint64, n16 uint16, k8 uint8) bool {
		n := uint64(n16%1000) + 1
		k := int(k8 % 20)
		s := rng.New(seed)
		events := make([]uarch.MissEvent, k)
		for i := range events {
			events[i] = uarch.MissEvent{
				Kind:  uarch.EventKind(s.Intn(3)),
				Index: uint64(s.Intn(int(n))),
			}
		}
		ivs, err := Segment(events, n)
		if err != nil {
			return false
		}
		var pos uint64
		for _, iv := range ivs {
			if iv.Start != pos || iv.End <= iv.Start {
				return false
			}
			pos = iv.End
		}
		return pos == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	ivs := []Interval{
		{Start: 0, End: 4, Kind: uarch.EvBranchMispredict},
		{Start: 4, End: 20, Kind: uarch.EvBranchMispredict},
		{Start: 20, End: 52, Kind: uarch.EvLongDMiss},
		{Start: 52, End: 60, Final: true},
	}
	s := Summarize(ivs, 12)
	if s.Count != 3 {
		t.Errorf("count = %d, want 3 (final excluded)", s.Count)
	}
	if s.ByKind[uarch.EvBranchMispredict] != 2 || s.ByKind[uarch.EvLongDMiss] != 1 {
		t.Errorf("by kind = %v", s.ByKind)
	}
	wantMean := (4.0 + 16.0 + 32.0) / 3
	if s.Lengths.Mean() != wantMean {
		t.Errorf("mean length = %v, want %v", s.Lengths.Mean(), wantMean)
	}
	if s.LengthLog.Total() != 3 {
		t.Errorf("log histogram total = %d", s.LengthLog.Total())
	}
}
