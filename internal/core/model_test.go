package core

import (
	"math"
	"testing"

	"intervalsim/internal/isa"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// memWorkload is a pointer-chase-flavoured configuration with substantial
// long-miss traffic, for exercising the serial-miss machinery.
func memWorkload() workload.Config {
	c := testWorkload()
	c.Name = "core-mem"
	c.DataFootprint = 8 << 20
	c.Locality = 0.6
	c.ChainProb = 0.75
	c.LoadFrac = 0.32
	return c
}

func buildFor(t *testing.T, wc workload.Config) (*Model, *Profile, *uarch.Result) {
	t.Helper()
	cfg := uarch.Baseline()
	tr, res := runDetailed(t, wc, cfg)
	prof, err := FunctionalProfile(tr.Reader(), cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildModel(func() trace.Reader { return tr.Reader() }, cfg, prof.ShortMissRatio(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return m, prof, res
}

func TestSerialMissesDetectedOnPointerChase(t *testing.T) {
	_, prof, _ := buildFor(t, memWorkload())
	if prof.LongDMisses == 0 {
		t.Fatal("memory workload produced no long misses")
	}
	if prof.LongSerial == 0 {
		t.Error("no serial long misses detected on a chained memory workload")
	}
	if prof.LongSerial > prof.LongDMisses {
		t.Errorf("serial (%d) exceeds total (%d)", prof.LongSerial, prof.LongDMisses)
	}
	serialEvents := 0
	for _, ev := range prof.Events {
		if ev.Serial {
			if ev.Kind != uarch.EvBranchMispredict && ev.Kind != uarch.EvICacheMiss {
				serialEvents++
			} else {
				t.Fatalf("non-load event marked serial: %+v", ev)
			}
		}
	}
	if uint64(serialEvents) != prof.LongSerial {
		t.Errorf("serial events %d != counter %d", serialEvents, prof.LongSerial)
	}
}

func TestModelOptionsMoveCPIPredictably(t *testing.T) {
	m, prof, _ := buildFor(t, memWorkload())
	predict := func(opts ModelOptions) float64 {
		m.Opts = opts
		b, err := m.PredictCPI(prof)
		if err != nil {
			t.Fatal(err)
		}
		return b.CPI()
	}
	full := predict(ModelOptions{})
	noSerial := predict(ModelOptions{NoSerialMisses: true})
	noCredit := predict(ModelOptions{NoOverlapCredit: true})
	noFetch := predict(ModelOptions{NoFetchCap: true})
	naive := predict(ModelOptions{NaiveResolution: true})

	if noSerial >= full {
		t.Errorf("dropping serial-miss detection must lower predicted CPI: %v vs %v", noSerial, full)
	}
	if noCredit <= full {
		t.Errorf("dropping overlap credit must raise predicted CPI: %v vs %v", noCredit, full)
	}
	if noFetch > full {
		t.Errorf("dropping the fetch cap must not raise CPI: %v vs %v", noFetch, full)
	}
	if naive < full {
		t.Errorf("naive resolution must not lower CPI: %v vs %v", naive, full)
	}
}

func TestFullModelAccuracyWithMatchedWarmup(t *testing.T) {
	// Mirror the E9 conditions: identical warmup on the detailed and the
	// functional side, on a memory-heavy workload. The first-order model
	// should land within a few tens of percent even here, and the serial
	// (pointer-chase) refinement must move the prediction toward the
	// simulator compared with assuming full miss overlap.
	const warm = 100_000
	wc := memWorkload()
	cfg := uarch.Baseline()
	tr, err := trace.ReadAll(workload.MustNew(wc, testLen))
	if err != nil {
		t.Fatal(err)
	}
	res, err := uarch.Run(tr.Reader(), cfg, uarch.Options{WarmupInsts: warm})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := FunctionalProfile(tr.Reader(), cfg, warm, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildModel(func() trace.Reader { return tr.Reader() }, cfg, prof.ShortMissRatio(), 0)
	if err != nil {
		t.Fatal(err)
	}
	errOf := func(opts ModelOptions) float64 {
		m.Opts = opts
		b, err := m.PredictCPI(prof)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := ValidationError(b, res)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	full := errOf(ModelOptions{})
	noSerial := errOf(ModelOptions{NoSerialMisses: true})
	if math.Abs(full) > 0.4 {
		t.Errorf("full model error %.1f%% too large on memory workload", full*100)
	}
	if math.Abs(noSerial) < math.Abs(full) {
		t.Errorf("serial-miss refinement hurt accuracy: %.1f%% vs %.1f%%", noSerial*100, full*100)
	}
}

func TestMachineLatencyExpectedValue(t *testing.T) {
	cfg := uarch.Baseline()
	lat := MachineLatency(cfg, 0.5)
	ld := &isaLoad
	got := lat(0, ld)
	want := float64(cfg.Mem.Lat.L1) + 0.5*float64(cfg.Mem.Lat.L2-cfg.Mem.Lat.L1)
	if got != want {
		t.Errorf("load latency = %v, want %v", got, want)
	}
	mul := &isaMul
	if lat(0, mul) != float64(cfg.FU.IntMul.Latency) {
		t.Errorf("mul latency = %v", lat(0, mul))
	}
}

func TestBuildModelRejectsBadConfig(t *testing.T) {
	cfg := uarch.Baseline()
	cfg.ROBSize = 0
	_, err := BuildModel(func() trace.Reader { return (&trace.Trace{}).Reader() }, cfg, 0, 0)
	if err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestWindowLadderEndsAtROB(t *testing.T) {
	for _, rob := range []int{17, 64, 128, 200} {
		ws := windowLadder(rob)
		if ws[len(ws)-1] != rob {
			t.Errorf("ladder for %d ends at %d", rob, ws[len(ws)-1])
		}
		for i := 1; i < len(ws); i++ {
			if ws[i] <= ws[i-1] {
				t.Errorf("ladder for %d not ascending: %v", rob, ws)
			}
		}
	}
}

func TestFunctionalProfileWarmup(t *testing.T) {
	wc := testWorkload()
	cfg := uarch.Baseline()
	tr, err := trace.ReadAll(workload.MustNew(wc, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	full, err := FunctionalProfile(tr.Reader(), cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := FunctionalProfile(tr.Reader(), cfg, 50_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Insts != full.Insts {
		t.Errorf("warmup changed Insts: %d vs %d", warm.Insts, full.Insts)
	}
	if warm.Warmup != 50_000 {
		t.Errorf("warmup not recorded: %d", warm.Warmup)
	}
	if warm.Mispredicts >= full.Mispredicts {
		t.Errorf("warmup did not reduce counted mispredicts: %d vs %d", warm.Mispredicts, full.Mispredicts)
	}
	for _, ev := range warm.Events {
		if ev.Index < 50_000 {
			t.Fatalf("pre-warmup event survived: %+v", ev)
		}
	}
	// Post-warmup miss rates must be at or below overall (cold start gone).
	fullRate := float64(full.LongDMisses) / float64(full.Insts)
	warmRate := float64(warm.LongDMisses) / float64(warm.Insts-warm.Warmup)
	if warmRate > fullRate*1.5 {
		t.Errorf("post-warmup long-miss rate %.4f suspiciously above overall %.4f", warmRate, fullRate)
	}
}

// package-level instruction values used by latency tests
var (
	isaLoad = loadInst()
	isaMul  = mulInst()
)

func loadInst() isa.Inst {
	return isa.Inst{Class: isa.Load, Src1: 1, Src2: isa.NoReg, Dst: 8, Addr: 0x1000}
}

func mulInst() isa.Inst {
	return isa.Inst{Class: isa.IntMul, Src1: 1, Src2: 2, Dst: 8}
}
