package core

import (
	"errors"
	"testing"

	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
)

// TestErrBadInputSentinel verifies the contract-violation paths all classify
// as ErrBadInput, so harnesses treat them as permanent.
func TestErrBadInputSentinel(t *testing.T) {
	// Event beyond the trace length.
	if _, err := Segment([]uarch.MissEvent{{Index: 100}}, 10); !errors.Is(err, ErrBadInput) {
		t.Errorf("Segment out-of-range err = %v, want ErrBadInput", err)
	}
	// Sampled result fed to the decomposer.
	if _, err := NewDecomposer(&trace.Trace{}, &uarch.Result{Sampled: true}); !errors.Is(err, ErrBadInput) {
		t.Errorf("sampled decompose err = %v, want ErrBadInput", err)
	}
	// Records without load levels.
	res := &uarch.Result{Records: []uarch.MispredictRecord{{}}}
	if _, err := NewDecomposer(&trace.Trace{}, res); !errors.Is(err, ErrBadInput) {
		t.Errorf("missing load levels err = %v, want ErrBadInput", err)
	}
	// Empty measured result in validation.
	if _, err := ValidationError(CPIBreakdown{}, &uarch.Result{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty result err = %v, want ErrBadInput", err)
	}
}
