package core

import (
	"fmt"

	"intervalsim/internal/cache"
	"intervalsim/internal/ilp"
	"intervalsim/internal/isa"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
)

// Breakdown splits one measured branch misprediction penalty into the
// paper's contributors. All values are cycles; they satisfy
//
//	Total = Frontend + BaseILP + FULatency + ShortDMiss + LongDMiss + Residual
//
// BaseILP is the unit-latency critical path through the window contents to
// the branch — the drain time a 1-cycle machine would need. It embodies both
// contributor (ii), because the window holds at most the instructions
// dispatched since the last miss event, and contributor (iii), the program's
// inherent ILP. FULatency and ShortDMiss are the critical-path stretch from
// real functional-unit latencies and from loads that missed L1 but hit L2.
// LongDMiss (stretch from loads serviced by memory that feed the branch) is
// reported separately: the paper treats long misses as their own miss-event
// class, and a branch waiting on one exposes the overlap the paper
// discusses. Residual is measured-minus-modeled: issue-width contention and
// other second-order effects.
type Breakdown struct {
	Frontend   float64 // (i) pipeline refill
	BaseILP    float64 // (ii)+(iii) unit-latency window drain to the branch
	FULatency  float64 // (iv)
	ShortDMiss float64 // (v)
	LongDMiss  float64 // long-miss overlap exposed on the resolution path
	Residual   float64 // contention and second-order effects (can be < 0)

	Total         float64 // measured penalty
	Occupancy     int     // window occupancy at branch dispatch
	SinceLastMiss uint64  // instructions since the previous miss event
}

// Decomposer computes per-misprediction breakdowns against the trace the
// simulator ran.
type Decomposer struct {
	insts []isa.Inst
	cfg   uarch.Config
	res   *uarch.Result // for LoadLevel lookups
}

// NewDecomposer prepares a decomposer for the given trace and simulation
// result. The result must have been produced with Options.RecordMispredicts
// and Options.RecordLoadLevels on that same trace.
func NewDecomposer(tr *trace.Trace, res *uarch.Result) (*Decomposer, error) {
	if res.Sampled {
		return nil, fmt.Errorf("%w: cannot decompose a sampled run (record indices are not trace positions)", ErrBadInput)
	}
	if len(res.Records) > 0 && res.LoadLevels == nil {
		return nil, fmt.Errorf("%w: result lacks load levels; run with RecordLoadLevels", ErrBadInput)
	}
	return &Decomposer{insts: tr.Insts, cfg: res.Config, res: res}, nil
}

// Decompose breaks down one misprediction record. Records without a resume
// (trace ended mid-penalty) return ok = false.
func (d *Decomposer) Decompose(rec uarch.MispredictRecord) (Breakdown, bool) {
	if rec.Penalty() <= 0 || rec.Index >= uint64(len(d.insts)) {
		return Breakdown{}, false
	}
	base := rec.OldestInROB
	window := d.insts[base : rec.Index+1]

	unit := ilp.CriticalPathTo(window, ilp.UnitLatency)
	fu := ilp.CriticalPathTo(window, d.latency(base, false, false))
	short := ilp.CriticalPathTo(window, d.latency(base, true, false))
	full := ilp.CriticalPathTo(window, d.latency(base, true, true))

	b := Breakdown{
		Frontend:      frontendRefill(d.cfg),
		BaseILP:       unit,
		FULatency:     fu - unit,
		ShortDMiss:    short - fu,
		LongDMiss:     full - short,
		Total:         rec.Penalty(),
		Occupancy:     rec.Occupancy,
		SinceLastMiss: rec.SinceLastMiss,
	}
	b.Residual = b.Total - b.Frontend - full
	return b, true
}

// DecomposeAll breaks down every complete record of the result.
func (d *Decomposer) DecomposeAll() []Breakdown {
	out := make([]Breakdown, 0, len(d.res.Records))
	for _, rec := range d.res.Records {
		if b, ok := d.Decompose(rec); ok {
			out = append(out, b)
		}
	}
	return out
}

// latency builds the window latency function: real functional-unit
// latencies everywhere, loads at L1 load-use latency, upgraded to the L2
// latency for observed short misses (withShort) and to memory latency for
// observed long misses (withLong). base is the trace index of the window's
// first instruction.
func (d *Decomposer) latency(base uint64, withShort, withLong bool) ilp.LatencyFunc {
	lat := d.cfg.Mem.Lat
	return func(idx int, in *isa.Inst) float64 {
		if in.Class == isa.Load {
			lvl, ok := d.res.LoadLevel(base + uint64(idx))
			switch {
			case ok && withShort && lvl == cache.ShortMiss:
				return float64(lat.L2)
			case ok && withLong && lvl == cache.LongMiss:
				return float64(lat.Mem)
			default:
				return float64(lat.L1)
			}
		}
		return float64(d.cfg.FU.OpLatency(in.Class))
	}
}

// Mean returns the element-wise mean of breakdowns (zero value if empty).
func Mean(bs []Breakdown) Breakdown {
	var m Breakdown
	if len(bs) == 0 {
		return m
	}
	var occ, since float64
	for _, b := range bs {
		m.Frontend += b.Frontend
		m.BaseILP += b.BaseILP
		m.FULatency += b.FULatency
		m.ShortDMiss += b.ShortDMiss
		m.LongDMiss += b.LongDMiss
		m.Residual += b.Residual
		m.Total += b.Total
		occ += float64(b.Occupancy)
		since += float64(b.SinceLastMiss)
	}
	n := float64(len(bs))
	m.Frontend /= n
	m.BaseILP /= n
	m.FULatency /= n
	m.ShortDMiss /= n
	m.LongDMiss /= n
	m.Residual /= n
	m.Total /= n
	m.Occupancy = int(occ/n + 0.5)
	m.SinceLastMiss = uint64(since/n + 0.5)
	return m
}
