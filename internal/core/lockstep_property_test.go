package core

import (
	"context"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// randomKSet derives a K-set of 2–5 structurally distinct configurations
// from a seed: the axes a sweep varies (window, queue, depth, width), all on
// the baseline predictor and memory hierarchy.
func randomKSet(seed uint64) []uarch.Config {
	pick := func(shift uint, mod int) int { return int((seed >> shift) % uint64(mod)) }
	k := 2 + pick(58, 4)
	cfgs := make([]uarch.Config, k)
	for i := range cfgs {
		sh := uint(i * 7)
		c := uarch.Baseline()
		c.Name = "kset-" + string(rune('a'+i))
		c.FrontendDepth = 3 + pick(sh, 9)
		c.ROBSize = 32 + 16*pick(sh+2, 15)
		c.IQSize = 8 + 8*pick(sh+4, 8)
		if c.IQSize > c.ROBSize { // the validator rejects a queue wider than the window
			c.IQSize = c.ROBSize
		}
		w := 1 << pick(sh+6, 3) // 1, 2 or 4 wide
		c.FetchWidth, c.DispatchWidth, c.IssueWidth, c.CommitWidth = w, w, w, w
		cfgs[i] = c
	}
	return cfgs
}

// TestLockstepDecompositionIdentityProperty fuzzes random K-sets of
// configurations over random workloads through SimulateMany and checks, for
// every member of the set:
//
//   - full lockstep runs: the paper's decomposition identity
//     Total = Frontend + BaseILP + FULatency + ShortDMiss + LongDMiss + Residual
//     holds for every misprediction, with the Frontend term equal to that
//     config's own pipeline depth (a batch-level mixup would break exactly
//     this per-config attribution);
//   - sampled lockstep runs: the extrapolation bookkeeping is self-consistent
//     — per-config SampleStats with ordered intervals, a unit-mean CPI close
//     to the aggregate sampled CPI, and the dependence fallback reported on
//     each member's own Result.
func TestLockstepDecompositionIdentityProperty(t *testing.T) {
	ctx := context.Background()
	f := func(seed uint64) bool {
		wc := propWorkload(seed)
		if err := wc.Validate(); err != nil {
			t.Logf("seed %d produced invalid config: %v", seed, err)
			return false
		}
		tr, err := trace.ReadAll(workload.MustNew(wc, 20_000))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		soa := trace.Pack(tr)
		cfgs := randomKSet(seed)

		full, err := uarch.SimulateMany(ctx, soa, nil, cfgs, uarch.Options{
			RecordMispredicts: true, RecordLoadLevels: true,
		})
		if err != nil {
			t.Logf("seed %d (full): %v", seed, err)
			return false
		}
		for i, res := range full {
			d, err := NewDecomposer(tr, res)
			if err != nil {
				t.Logf("seed %d config %d: %v", seed, i, err)
				return false
			}
			for j, b := range d.DecomposeAll() {
				sum := b.Frontend + b.BaseILP + b.FULatency + b.ShortDMiss + b.LongDMiss + b.Residual
				if math.Abs(sum-b.Total) > 1e-9 {
					t.Logf("seed %d config %d breakdown %d: components sum to %v, total %v", seed, i, j, sum, b.Total)
					return false
				}
				if b.Frontend != float64(cfgs[i].FrontendDepth) {
					t.Logf("seed %d config %d breakdown %d: frontend %v != this config's depth %d",
						seed, i, j, b.Frontend, cfgs[i].FrontendDepth)
					return false
				}
				if b.BaseILP < 0 || b.FULatency < 0 || b.ShortDMiss < 0 || b.LongDMiss < 0 {
					t.Logf("seed %d config %d breakdown %d: negative monotone component %+v", seed, i, j, b)
					return false
				}
			}
		}

		sampled, err := uarch.SimulateMany(ctx, soa, nil, cfgs, uarch.Options{
			SampleStartSkip: 2_000, SampleDetailed: 1_500, SampleSkip: 3_000,
		})
		if err != nil {
			t.Logf("seed %d (sampled): %v", seed, err)
			return false
		}
		for i, res := range sampled {
			if !res.Sampled || res.Sample == nil {
				t.Logf("seed %d config %d: sampled lockstep result lacks SampleStats", seed, i)
				return false
			}
			if !strings.Contains(res.Fallback, "sampled run") {
				t.Logf("seed %d config %d: dependence fallback not reported per config: %q", seed, i, res.Fallback)
				return false
			}
			st := res.Sample
			if !(st.CPI.Lower <= st.CPI.Mean && st.CPI.Mean <= st.CPI.Upper) {
				t.Logf("seed %d config %d: CPI interval out of order: %+v", seed, i, st.CPI)
				return false
			}
			// Extrapolation consistency: the unit-mean estimator and the
			// aggregate detailed-phase CPI estimate the same quantity from
			// the same (few, equal-size) units.
			agg := res.CPI()
			if agg <= 0 || st.CPI.Mean <= 0 {
				t.Logf("seed %d config %d: non-positive sampled CPI (agg %v, mean %v)", seed, i, agg, st.CPI.Mean)
				return false
			}
			if r := st.CPI.Mean / agg; r < 0.75 || r > 1.25 {
				t.Logf("seed %d config %d: unit-mean CPI %v far from aggregate %v", seed, i, st.CPI.Mean, agg)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
