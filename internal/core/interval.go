// Package core implements interval analysis — the paper's contribution.
//
// Interval analysis models superscalar execution as a sequence of intervals
// delimited by miss events (branch mispredictions, I-cache misses, long
// D-cache misses). Between events a balanced processor sustains its dispatch
// width D, so total cycles decompose as N/D plus a penalty per event. The
// package provides:
//
//   - Segment: partition an execution into inter-miss intervals (burstiness
//     structure, interval-length distributions).
//   - Decompose: split each measured misprediction penalty into the paper's
//     five contributors — frontend pipeline length, window occupancy driven
//     by the distance since the last miss event, inherent ILP (unit-latency
//     critical path), functional-unit latencies, and short (L1) D-cache
//     misses — by computing critical paths over the exact window contents
//     the detailed simulator recorded.
//   - Model: an analytic interval model that predicts per-event penalties
//     and whole-program CPI from a fast functional profile (predictor +
//     caches only) plus the program's ILP characteristic, validated against
//     the cycle-level simulator.
package core

import (
	"fmt"
	"sort"

	"intervalsim/internal/cache"
	"intervalsim/internal/stats"
	"intervalsim/internal/uarch"
)

// Interval is a run of instructions ended by a miss event (or by the end of
// the trace for the final interval).
type Interval struct {
	Start uint64          // index of the first instruction in the interval
	End   uint64          // index one past the terminating event's instruction
	Kind  uarch.EventKind // kind of the terminating event
	Level cache.Level     // hierarchy level for cache-event terminators
	Final bool            // true for the trailing event-less interval
}

// Len returns the interval length in instructions, including the instruction
// that caused the terminating event.
func (iv Interval) Len() uint64 { return iv.End - iv.Start }

// Segment partitions an execution of totalInsts instructions into intervals
// using the recorded miss events. Events are sorted by instruction index;
// multiple events on one instruction (e.g. an I-cache miss while fetching a
// branch that then mispredicts) collapse into one boundary, keeping the
// highest-priority kind (mispredict > value-misspec > I-cache > long
// D-miss). The returned intervals exactly tile [0, totalInsts).
func Segment(events []uarch.MissEvent, totalInsts uint64) ([]Interval, error) {
	evs := append([]uarch.MissEvent(nil), events...)
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Index != evs[j].Index {
			return evs[i].Index < evs[j].Index
		}
		return eventPriority(evs[i].Kind) > eventPriority(evs[j].Kind)
	})
	var out []Interval
	var start uint64
	for i, ev := range evs {
		if ev.Index >= totalInsts {
			return nil, fmt.Errorf("%w: event index %d beyond trace length %d", ErrBadInput, ev.Index, totalInsts)
		}
		if i > 0 && ev.Index == evs[i-1].Index {
			continue // collapsed boundary
		}
		out = append(out, Interval{Start: start, End: ev.Index + 1, Kind: ev.Kind, Level: ev.Level})
		start = ev.Index + 1
	}
	if start < totalInsts {
		out = append(out, Interval{Start: start, End: totalInsts, Final: true})
	}
	return out, nil
}

func eventPriority(k uarch.EventKind) int {
	switch k {
	case uarch.EvBranchMispredict:
		return 4
	case uarch.EvValueMisspec:
		// A value misspeculation is a pipeline flush like a mispredict; it
		// outranks the cache events that can share its instruction (a
		// misspeculated load can itself long-miss).
		return 3
	case uarch.EvICacheMiss:
		return 2
	default:
		return 1
	}
}

// IntervalStats summarizes a segmentation.
type IntervalStats struct {
	Count     uint64
	ByKind    map[uarch.EventKind]uint64
	Lengths   stats.Running
	LengthLog *stats.Log2Histogram
}

// Summarize aggregates interval counts and the length distribution
// (log2-bucketed up to 2^buckets instructions).
func Summarize(intervals []Interval, buckets int) IntervalStats {
	s := IntervalStats{
		ByKind:    make(map[uarch.EventKind]uint64),
		LengthLog: stats.NewLog2Histogram(buckets),
	}
	for _, iv := range intervals {
		if iv.Final {
			continue // not terminated by an event
		}
		s.Count++
		s.ByKind[iv.Kind]++
		s.Lengths.Add(float64(iv.Len()))
		s.LengthLog.Add(iv.Len())
	}
	return s
}
