package core

import (
	"fmt"

	"intervalsim/internal/cache"
	"intervalsim/internal/isa"
	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/vpred"
)

// vpredConfigFP names a machine's value-predictor configuration the way
// overlays do: 0 for the classic vpred-less machine.
func vpredConfigFP(vp *vpred.Config) uint64 {
	if vp == nil {
		return 0
	}
	return vp.Fingerprint()
}

// OverlayProfile builds the same Profile as FunctionalProfile from a
// precomputed miss-event overlay instead of live predictor and cache
// simulation. The overlay already fixes every speculation outcome, so the
// walk only reconstructs what depends on the machine configuration beyond
// the speculation structures: the register dataflow taint that marks
// serialized long misses (a function of ROBSize) and the warmup/maxInsts
// windowing. One overlay therefore serves every timing point of a sweep —
// this is the fast path behind the analytic-model experiments, typically an
// order of magnitude cheaper than re-simulating the caches and predictor
// per point.
//
// The overlay must have been computed over exactly soa under cfg's
// predictor and cache-geometry fingerprints; anything else is an error
// (unlike the silent fallback of the cycle-level replay mode, callers here
// chose the overlay deliberately).
func OverlayProfile(soa *trace.SoA, ov *overlay.Overlay, cfg uarch.Config, warmup, maxInsts uint64) (*Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ov.Trace != soa {
		return nil, fmt.Errorf("core: overlay was computed for a different trace")
	}
	if ov.PredFP != cfg.Pred.Fingerprint() || ov.MemFP != cfg.Mem.Fingerprint() {
		return nil, fmt.Errorf("core: overlay fingerprints do not match the configuration")
	}
	if ov.VPredFP != vpredConfigFP(cfg.VPred) {
		return nil, fmt.Errorf("core: overlay value-predictor fingerprint does not match the configuration")
	}
	n := uint64(soa.Len())
	if maxInsts > 0 && maxInsts < n {
		n = maxInsts
	}
	p := &Profile{Warmup: warmup}
	// Dataflow taint, exactly as in FunctionalProfile: per register, the
	// trace index of the most recent long D-miss in its producing chain.
	var taint [isa.NumRegs]int64
	for i := range taint {
		taint[i] = -1
	}
	taintOf := func(r int8) int64 {
		if r == isa.NoReg {
			return -1
		}
		return taint[r]
	}
	for idx := uint64(0); idx < n; idx++ {
		i := int(idx)
		p.Insts++
		counting := idx >= warmup

		code := ov.Code[i]
		if ic := (code & overlay.IMask) >> overlay.IShift; ic != 0 {
			if lvl := cache.Level(ic - 1); lvl != cache.L1Hit && counting {
				p.ICacheMisses++
				p.Events = append(p.Events, uarch.MissEvent{
					Kind: uarch.EvICacheMiss, Index: idx, Level: lvl,
				})
			}
		}

		// Value-speculation bits, appended in the same order as
		// FunctionalProfile (after the I-cache event, before the data/control
		// event). The pre-pass only sets these bits on eligible instructions,
		// so no eligibility re-check is needed.
		if ov.VPredFP != 0 {
			switch {
			case code&overlay.VPredHit != 0:
				if counting {
					p.ValuePredHits++
				}
			case code&overlay.VPredMiss != 0:
				if counting {
					p.ValueMisspecs++
					p.Events = append(p.Events, uarch.MissEvent{
						Kind: uarch.EvValueMisspec, Index: idx,
					})
				}
			}
		}

		meta := soa.Meta[i]
		class := isa.Class(meta & trace.MetaClassMask)
		switch {
		case class == isa.Load:
			dc := code & overlay.DMask
			if dc == 0 {
				return nil, fmt.Errorf("core: overlay has no D class for the load at index %d", idx)
			}
			lvl := cache.Level(dc - 1)
			addrTaint := taintOf(soa.Src1[i])
			var dstTaint int64 = -1
			if counting {
				p.Loads++
			}
			switch lvl {
			case cache.ShortMiss:
				if counting {
					p.ShortDMisses++
				}
			case cache.LongMiss:
				serial := addrTaint >= 0 && idx-uint64(addrTaint) < uint64(cfg.ROBSize)
				if counting {
					p.LongDMisses++
					ev := uarch.MissEvent{Kind: uarch.EvLongDMiss, Index: idx, Level: lvl}
					if serial {
						p.LongSerial++
						ev.Serial = true
						ev.Parent = uint64(addrTaint)
					}
					p.Events = append(p.Events, ev)
				}
				dstTaint = int64(idx)
			}
			if d := soa.Dst[i]; d != isa.NoReg {
				taint[d] = dstTaint
			}
		case class == isa.Store:
			// The store's data access is already baked into the overlay and
			// contributes nothing to any profile count.
		case class.IsControl():
			if !counting {
				break
			}
			if class == isa.Branch {
				p.Branches++
			} else {
				p.Jumps++
			}
			if meta&trace.MetaTakenBit != 0 {
				p.TakenXfers++
			}
			if code&overlay.AnyMiss != 0 {
				p.Mispredicts++
				p.Events = append(p.Events, uarch.MissEvent{
					Kind: uarch.EvBranchMispredict, Index: idx,
				})
			}
		default:
			if d := soa.Dst[i]; d != isa.NoReg {
				t := taintOf(soa.Src1[i])
				if t2 := taintOf(soa.Src2[i]); t2 > t {
					t = t2
				}
				taint[d] = t
			}
		}
	}
	return p, nil
}
