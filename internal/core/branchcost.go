package core

import (
	"sort"

	"intervalsim/internal/isa"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
)

// BranchCost aggregates the measured misprediction cost of one static
// control transfer (a conditional branch, or an indirect jump whose BTB
// misses redirect fetch the same way). The paper's motivation for
// characterizing the penalty is exactly this kind of attribution: deciding
// which branches are worth if-converting (predicating) or otherwise
// restructuring.
type BranchCost struct {
	PC           uint64  // static branch address
	Mispredicts  uint64  // dynamic mispredictions attributed to it
	TotalPenalty float64 // summed measured penalty, cycles
}

// AvgPenalty returns the mean penalty per misprediction of this branch.
func (b BranchCost) AvgPenalty() float64 {
	if b.Mispredicts == 0 {
		return 0
	}
	return b.TotalPenalty / float64(b.Mispredicts)
}

// CostliestBranches attributes every recorded misprediction penalty to its
// static branch and returns the top k branches by total penalty (all of
// them if k <= 0), descending. Ties break on PC for determinism.
func CostliestBranches(tr *trace.Trace, res *uarch.Result, k int) []BranchCost {
	byPC := make(map[uint64]*BranchCost)
	for _, rec := range res.Records {
		p := rec.Penalty()
		if p <= 0 || rec.Index >= uint64(len(tr.Insts)) {
			continue
		}
		pc := tr.Insts[rec.Index].PC
		c := byPC[pc]
		if c == nil {
			c = &BranchCost{PC: pc}
			byPC[pc] = c
		}
		c.Mispredicts++
		c.TotalPenalty += p
	}
	out := make([]BranchCost, 0, len(byPC))
	for _, c := range byPC {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalPenalty != out[j].TotalPenalty {
			return out[i].TotalPenalty > out[j].TotalPenalty
		}
		return out[i].PC < out[j].PC
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Predicate returns a copy of tr in which every conditional branch at one of
// the given PCs is replaced by a plain ALU operation on the same source
// register. This models idealized if-conversion: the control dependence
// becomes a data dependence, so the branch can no longer mispredict — but
// note the trace keeps the taken path's instructions only, so the
// both-paths execution overhead of real predication is not charged (an
// optimistic bound, which is how such studies use it).
func Predicate(tr *trace.Trace, pcs map[uint64]bool) *trace.Trace {
	out := &trace.Trace{Insts: make([]isa.Inst, len(tr.Insts))}
	copy(out.Insts, tr.Insts)
	for i := range out.Insts {
		in := &out.Insts[i]
		if in.Class == isa.Branch && pcs[in.PC] {
			in.Class = isa.IntALU
			in.Taken = false
			in.Target = 0
			in.Dst = isa.NoReg
		}
	}
	return out
}
