package core

import (
	"io"

	"intervalsim/internal/cache"
	"intervalsim/internal/isa"
	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/vpred"
)

// Profile is the outcome of fast functional simulation: the miss-event
// stream and rates interval analysis needs, gathered by driving only the
// branch predictor and the cache hierarchy over the trace in program order —
// no timing, no window, roughly an order of magnitude faster than the
// cycle-level simulator. This is the input side of the paper's analytic
// model: penalties are then *predicted* from these events rather than
// measured.
type Profile struct {
	Insts  uint64 // instructions processed, including warmup
	Warmup uint64 // leading instructions excluded from counts and events
	Events []uarch.MissEvent

	Branches     uint64
	Jumps        uint64
	TakenXfers   uint64 // taken branches + jumps: fetch-group breaks
	Mispredicts  uint64
	ICacheMisses uint64
	Loads        uint64
	ShortDMisses uint64
	LongDMisses  uint64
	LongSerial   uint64 // long misses address-dependent on a prior in-window long miss

	ValuePredHits uint64 // confident-correct value predictions (dependence broken)
	ValueMisspecs uint64 // confident-wrong value predictions (pipeline flush)
}

// ShortMissRatio returns the fraction of loads served by the L2.
func (p *Profile) ShortMissRatio() float64 {
	if p.Loads == 0 {
		return 0
	}
	return float64(p.ShortDMisses) / float64(p.Loads)
}

// FunctionalProfile runs the predictor-and-caches functional simulation of
// the stream from r on the machine cfg, up to maxInsts instructions (0 =
// all). The first warmup instructions train the predictor and caches but are
// excluded from every count and from the event stream, mirroring
// uarch.Options.WarmupInsts so model predictions and detailed measurements
// cover the same steady-state region.
func FunctionalProfile(r trace.Reader, cfg uarch.Config, warmup, maxInsts uint64) (*Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pred, err := cfg.Pred.Build()
	if err != nil {
		return nil, err
	}
	mem := cache.NewHierarchy(cfg.Mem)
	var vrun *vpred.Runner
	if cfg.VPred != nil {
		if vrun, err = vpred.NewRunner(*cfg.VPred); err != nil {
			return nil, err
		}
	}
	lineMask := ^uint64(mem.LineSizeI() - 1)
	p := &Profile{Warmup: warmup}
	var curLine uint64
	haveLine := false
	// Dataflow taint: for each register, the trace index of the most recent
	// long D-miss in its producing chain (-1 if none). A long-missing load
	// whose address register is tainted by a miss still inside one reorder
	// window is serialized behind it (pointer chasing).
	var taint [isa.NumRegs]int64
	for i := range taint {
		taint[i] = -1
	}
	taintOf := func(r int8) int64 {
		if r == isa.NoReg {
			return -1
		}
		return taint[r]
	}
	for maxInsts == 0 || p.Insts < maxInsts {
		in, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		idx := p.Insts
		p.Insts++
		counting := idx >= warmup

		if line := in.PC & lineMask; !haveLine || line != curLine {
			curLine = line
			haveLine = true
			if lvl, _ := mem.Fetch(in.PC); lvl != cache.L1Hit && counting {
				p.ICacheMisses++
				p.Events = append(p.Events, uarch.MissEvent{
					Kind: uarch.EvICacheMiss, Index: idx, Level: lvl,
				})
			}
		}

		// Value prediction runs at fetch, before the instruction's own data
		// access — the same program-order point as the cycle-level simulator
		// and the overlay pre-pass, so all three agree on predictor state.
		if vrun != nil && overlay.VPredEligible(in.Class, in.Dst) {
			switch vrun.Access(in.PC) {
			case vpred.Hit:
				if counting {
					p.ValuePredHits++
				}
			case vpred.Miss:
				if counting {
					p.ValueMisspecs++
					p.Events = append(p.Events, uarch.MissEvent{
						Kind: uarch.EvValueMisspec, Index: idx,
					})
				}
			}
		}

		switch {
		case in.Class == isa.Load:
			lvl, _ := mem.Data(in.Addr)
			addrTaint := taintOf(in.Src1)
			var dstTaint int64 = -1
			if counting {
				p.Loads++
			}
			switch lvl {
			case cache.ShortMiss:
				if counting {
					p.ShortDMisses++
				}
			case cache.LongMiss:
				serial := addrTaint >= 0 && idx-uint64(addrTaint) < uint64(cfg.ROBSize)
				if counting {
					p.LongDMisses++
					ev := uarch.MissEvent{Kind: uarch.EvLongDMiss, Index: idx, Level: lvl}
					if serial {
						p.LongSerial++
						ev.Serial = true
						ev.Parent = uint64(addrTaint)
					}
					p.Events = append(p.Events, ev)
				}
				dstTaint = int64(idx)
			}
			if in.Dst != isa.NoReg {
				taint[in.Dst] = dstTaint
			}
		case in.Class == isa.Store:
			mem.Data(in.Addr)
		case in.Class.IsControl():
			mispredicted := pred.Access(&in)
			if !counting {
				break
			}
			if in.Class == isa.Branch {
				p.Branches++
			} else {
				p.Jumps++
			}
			if in.Taken {
				p.TakenXfers++
			}
			if mispredicted {
				p.Mispredicts++
				p.Events = append(p.Events, uarch.MissEvent{
					Kind: uarch.EvBranchMispredict, Index: idx,
				})
			}
		default:
			if in.Dst != isa.NoReg {
				t := taintOf(in.Src1)
				if t2 := taintOf(in.Src2); t2 > t {
					t = t2
				}
				taint[in.Dst] = t
			}
		}
	}
	return p, nil
}
