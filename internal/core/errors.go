package core

import "errors"

// ErrBadInput marks analysis inputs that violate the package's contracts —
// events past the end of the trace, results missing the instrumentation a
// decomposition needs, sampled runs fed to trace-position analyses. Like
// uarch.ErrBadConfig it is permanent: a harness must not retry it. Every
// such error wraps this sentinel for errors.Is.
var ErrBadInput = errors.New("core: bad input")
