package core

import (
	"math"
	"testing"

	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// testWorkload is a small but miss-diverse benchmark configuration.
func testWorkload() workload.Config {
	return workload.Config{
		Name: "core-test", Seed: 77,
		Regions: 8, BlocksPerRegion: 10,
		BlockSize: workload.Range{Min: 4, Max: 8}, LoopTrip: workload.Range{Min: 6, Max: 20}, RegionTheta: 0.8,
		LoadFrac: 0.25, StoreFrac: 0.10, MulFrac: 0.02, DivFrac: 0.002,
		ChainProb:        0.5,
		RandomBranchFrac: 0.10, RandomBranchBias: 0.5,
		PatternBranchFrac: 0.10, TakenBias: 0.95,
		DataFootprint: 1 << 20, StrideFrac: 0.3, Locality: 1.2,
	}
}

const testLen = 300_000

func runDetailed(t *testing.T, wc workload.Config, cfg uarch.Config) (*trace.Trace, *uarch.Result) {
	t.Helper()
	tr, err := trace.ReadAll(workload.MustNew(wc, testLen))
	if err != nil {
		t.Fatal(err)
	}
	res, err := uarch.Run(tr.Reader(), cfg, uarch.Options{
		RecordEvents:      true,
		RecordMispredicts: true,
		RecordLoadLevels:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

func TestDecompositionIdentityAndSigns(t *testing.T) {
	tr, res := runDetailed(t, testWorkload(), uarch.Baseline())
	if len(res.Records) < 100 {
		t.Fatalf("only %d mispredict records", len(res.Records))
	}
	d, err := NewDecomposer(tr, res)
	if err != nil {
		t.Fatal(err)
	}
	bs := d.DecomposeAll()
	if len(bs) < 100 {
		t.Fatalf("only %d breakdowns", len(bs))
	}
	for i, b := range bs {
		sum := b.Frontend + b.BaseILP + b.FULatency + b.ShortDMiss + b.LongDMiss + b.Residual
		if math.Abs(sum-b.Total) > 1e-9 {
			t.Fatalf("breakdown %d does not sum: %v vs %v", i, sum, b.Total)
		}
		if b.Frontend != float64(uarch.Baseline().FrontendDepth) {
			t.Fatalf("breakdown %d frontend = %v", i, b.Frontend)
		}
		if b.BaseILP < 0 || b.FULatency < 0 || b.ShortDMiss < 0 || b.LongDMiss < 0 {
			t.Fatalf("breakdown %d has negative monotone component: %+v", i, b)
		}
		if b.BaseILP > float64(b.Occupancy)+1 {
			t.Fatalf("breakdown %d: unit drain %v exceeds occupancy %d", i, b.BaseILP, b.Occupancy)
		}
	}
	m := Mean(bs)
	if m.Total < m.Frontend {
		t.Errorf("mean penalty %v below frontend depth %v", m.Total, m.Frontend)
	}
	// The headline result: the average penalty clearly exceeds the frontend
	// pipeline length.
	if m.Total < m.Frontend+2 {
		t.Errorf("mean penalty %v barely above frontend %v; expected substantial drain", m.Total, m.Frontend)
	}
}

func TestDecomposerRequiresLoadLevels(t *testing.T) {
	tr, err := trace.ReadAll(workload.MustNew(testWorkload(), 50_000))
	if err != nil {
		t.Fatal(err)
	}
	res, err := uarch.Run(tr.Reader(), uarch.Baseline(), uarch.Options{RecordMispredicts: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecomposer(tr, res); err == nil && len(res.Records) > 0 {
		t.Fatal("decomposer accepted result without load levels")
	}
}

func TestMeanEmpty(t *testing.T) {
	if m := Mean(nil); m.Total != 0 {
		t.Error("mean of nothing should be zero")
	}
}

func TestDrainGrowsWithOccupancy(t *testing.T) {
	tr, res := runDetailed(t, testWorkload(), uarch.Baseline())
	d, err := NewDecomposer(tr, res)
	if err != nil {
		t.Fatal(err)
	}
	bs := d.DecomposeAll()
	// Contributor (ii): a branch entering a nearly empty window must drain -
	// and therefore resolve - faster than one entering a full window. The
	// drain components (everything except the constant frontend refill and
	// the residual) are the clean signal; total penalties are noisy because
	// long-miss loads can land in any window.
	drain := func(b Breakdown) float64 { return b.BaseILP + b.FULatency + b.ShortDMiss }
	var shortSum, longSum float64
	var shortN, longN int
	for _, b := range bs {
		switch {
		case b.Occupancy <= 8:
			shortSum += drain(b)
			shortN++
		case b.Occupancy >= 64:
			longSum += drain(b)
			longN++
		}
	}
	if shortN < 10 || longN < 10 {
		t.Skipf("not enough samples: short=%d long=%d", shortN, longN)
	}
	if shortSum/float64(shortN) >= longSum/float64(longN) {
		t.Errorf("drain at low occupancy (%.1f) not below high occupancy (%.1f)",
			shortSum/float64(shortN), longSum/float64(longN))
	}
}

func TestFunctionalProfileMatchesDetailedEvents(t *testing.T) {
	wc := testWorkload()
	cfg := uarch.Baseline()
	tr, res := runDetailed(t, wc, cfg)
	prof, err := FunctionalProfile(tr.Reader(), cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Insts != uint64(tr.Len()) {
		t.Fatalf("profile insts = %d", prof.Insts)
	}
	// The predictor and I-cache see the identical in-order stream in both
	// simulators, so those event counts must agree exactly.
	if prof.Mispredicts != res.Mispredicts {
		t.Errorf("mispredicts: functional %d vs detailed %d", prof.Mispredicts, res.Mispredicts)
	}
	if prof.ICacheMisses != res.ICacheMisses {
		t.Errorf("icache misses: functional %d vs detailed %d", prof.ICacheMisses, res.ICacheMisses)
	}
	// D-cache access order differs (program order vs issue order): counts
	// must agree within a modest tolerance.
	relClose := func(a, b uint64, tol float64) bool {
		if a == b {
			return true
		}
		den := math.Max(float64(a), float64(b))
		return math.Abs(float64(a)-float64(b))/den <= tol
	}
	if !relClose(prof.LongDMisses, res.LongDMisses, 0.25) {
		t.Errorf("long misses: functional %d vs detailed %d", prof.LongDMisses, res.LongDMisses)
	}
	if !relClose(prof.ShortDMisses, res.ShortDMisses, 0.35) {
		t.Errorf("short misses: functional %d vs detailed %d", prof.ShortDMisses, res.ShortDMisses)
	}
}

func TestModelPenaltyMonotoneAndAboveFrontend(t *testing.T) {
	wc := testWorkload()
	cfg := uarch.Baseline()
	prof, err := FunctionalProfile(workload.MustNew(wc, testLen), cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildModel(func() trace.Reader { return workload.MustNew(wc, testLen) },
		cfg, prof.ShortMissRatio(), testLen)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, d := range []uint64{0, 2, 8, 32, 128, 512} {
		p := m.MispredictPenalty(d)
		if p < float64(cfg.FrontendDepth) {
			t.Errorf("penalty(%d) = %v below frontend depth", d, p)
		}
		if p < prev {
			t.Errorf("penalty not monotone at distance %d: %v < %v", d, p, prev)
		}
		prev = p
	}
	// Saturation: beyond the ROB size the window cannot grow.
	if m.MispredictPenalty(1<<20) != m.MispredictPenalty(uint64(cfg.ROBSize)) {
		t.Error("penalty does not saturate at ROB size")
	}
}

func TestModelCPIValidation(t *testing.T) {
	wc := testWorkload()
	cfg := uarch.Baseline()
	tr, res := runDetailed(t, wc, cfg)
	prof, err := FunctionalProfile(tr.Reader(), cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildModel(func() trace.Reader { return tr.Reader() }, cfg, prof.ShortMissRatio(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.PredictCPI(prof)
	if err != nil {
		t.Fatal(err)
	}
	relErr, err := ValidationError(pred, res)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("model CPI %.3f vs measured %.3f (err %.1f%%)", pred.CPI(), res.CPI(), relErr*100)
	if math.Abs(relErr) > 0.15 {
		t.Errorf("model error %.1f%% exceeds 15%%", relErr*100)
	}
	if pred.Base <= 0 || pred.Bpred <= 0 {
		t.Errorf("degenerate breakdown: %+v", pred)
	}
}

func TestValidationErrorEmptyResult(t *testing.T) {
	if _, err := ValidationError(CPIBreakdown{}, &uarch.Result{}); err == nil {
		t.Fatal("empty result accepted")
	}
}

func TestCPIBreakdownAccessors(t *testing.T) {
	b := CPIBreakdown{Insts: 100, Base: 25, Bpred: 10, ICache: 5, LongData: 10}
	if b.Total() != 50 {
		t.Errorf("total = %v", b.Total())
	}
	if b.CPI() != 0.5 {
		t.Errorf("cpi = %v", b.CPI())
	}
	if (CPIBreakdown{}).CPI() != 0 {
		t.Error("empty breakdown CPI should be 0")
	}
}
