package core

import (
	"fmt"

	"intervalsim/internal/cache"
	"intervalsim/internal/ilp"
	"intervalsim/internal/isa"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
)

// Model is the analytic interval model: it predicts branch misprediction
// penalties and whole-program CPI from (a) the machine configuration, (b)
// the program's ILP characteristic, and (c) a functional miss-event profile.
// Nothing here requires cycle-level simulation; the detailed simulator is
// used only to validate the predictions (experiment E9).
type Model struct {
	Cfg uarch.Config

	// KUnit is the unit-latency ILP characteristic (inherent ILP).
	KUnit ilp.Characteristic
	// KLat is the characteristic under machine latencies: functional-unit
	// latencies, the L1 load-use latency, and the expected short-miss uplift
	// on loads (contributors iv and v folded into the drain curve).
	KLat ilp.Characteristic
	// KRes is the branch-resolution characteristic under machine latencies:
	// the mean critical path ending at a branch over the occupancy preceding
	// it. It saturates at the typical branch-chain depth, which is what a
	// mispredicted branch actually waits for.
	KRes ilp.Characteristic

	// Opts disables individual model refinements for ablation studies
	// (experiment A1). The zero value is the full model.
	Opts ModelOptions
}

// ModelOptions switches off individual refinements of the analytic model so
// their contribution to accuracy can be measured. All false = full model.
type ModelOptions struct {
	// NoSerialMisses treats every long D-miss as overlappable, ignoring the
	// pointer-chase dependence detection.
	NoSerialMisses bool
	// NoOverlapCredit charges isolated long misses the full memory latency
	// instead of crediting the window-fill overlap.
	NoOverlapCredit bool
	// NoFetchCap removes the taken-transfer fetch-break cap on the
	// steady-state dispatch rate.
	NoFetchCap bool
	// NoILPCap removes the inherent-ILP cap on the dispatch rate.
	NoILPCap bool
	// NaiveResolution replaces the scheduled branch-resolution
	// characteristic with the raw whole-window critical path — the
	// difference is the execution-overlap credit old window contents earn
	// while the branch travels the frontend.
	NaiveResolution bool
}

// BuildModel profiles the program twice (unit and machine latencies) over at
// most maxInsts instructions. mk must return a fresh reader over the same
// trace on each call; shortRatio is the program's short-miss ratio from a
// functional profile.
func BuildModel(mk func() trace.Reader, cfg uarch.Config, shortRatio float64, maxInsts int) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	windows := windowLadder(cfg.ROBSize)
	kunit, err := ilp.Profile(mk(), windows, ilp.UnitLatency, maxInsts)
	if err != nil {
		return nil, err
	}
	klat, err := ilp.Profile(mk(), windows, MachineLatency(cfg, shortRatio), maxInsts)
	if err != nil {
		return nil, err
	}
	kres, err := ilp.ProfileResolution(mk(), windows, MachineLatency(cfg, shortRatio), cfg.DispatchWidth, maxInsts, 4)
	if err != nil {
		return nil, err
	}
	return &Model{Cfg: cfg, KUnit: kunit, KLat: klat, KRes: kres}, nil
}

// windowLadder returns power-of-two window sizes up to and including the
// ROB size.
func windowLadder(rob int) []int {
	var out []int
	for w := 2; w < rob; w *= 2 {
		out = append(out, w)
	}
	return append(out, rob)
}

// MachineLatency is the expected-value latency function of the machine:
// class latencies from the FU pools, loads at L1 latency plus the expected
// short-miss uplift shortRatio·(L2−L1).
func MachineLatency(cfg uarch.Config, shortRatio float64) ilp.LatencyFunc {
	lat := cfg.Mem.Lat
	loadLat := float64(lat.L1) + shortRatio*float64(lat.L2-lat.L1)
	return func(_ int, in *isa.Inst) float64 {
		if in.Class == isa.Load {
			return loadLat
		}
		return float64(cfg.FU.OpLatency(in.Class))
	}
}

// dispatchToIssue is the modeled gap between an instruction entering the
// window and its earliest issue.
const dispatchToIssue = 1

// frontendRefill is the modeled cost of refilling the frontend after a
// pipeline flush. With a variable-rate frontend (FetchRate in (0,1)) the
// first post-flush fetch groups trail a low-confidence branch and move at
// only FetchRate of full width, stretching the refill by the expected extra
// cycles per group, 1/rate − 1 (Ramachandran & Johnson).
func frontendRefill(cfg uarch.Config) float64 {
	d := float64(cfg.FrontendDepth)
	if r := cfg.FetchRate; r > 0 && r < 1 {
		d += 1/r - 1
	}
	return d
}

// MispredictPenalty predicts the penalty of a misprediction occurring
// sinceLast instructions after the previous miss event: the window drain
// (bounded by how much of the window could refill since the last event —
// contributor ii — and shaped by the ILP characteristic under machine
// latencies — contributors iii, iv, v) plus the frontend refill
// (contributor i).
func (m *Model) MispredictPenalty(sinceLast uint64) float64 {
	occ := sinceLast
	if occ > uint64(m.Cfg.ROBSize) {
		occ = uint64(m.Cfg.ROBSize)
	}
	drain := 0.0
	if occ > 0 {
		if m.Opts.NaiveResolution {
			drain = m.KLat.EvalInterp(int(occ))
		} else {
			drain = m.KRes.EvalInterp(int(occ))
		}
	}
	return drain + dispatchToIssue + frontendRefill(m.Cfg)
}

// CPIBreakdown is the model's cycle stack, in total cycles. The paper's
// equation: C = N/Deff + Σ penalties.
type CPIBreakdown struct {
	Insts    uint64
	Base     float64 // N / effective dispatch rate
	Bpred    float64 // Σ misprediction penalties
	ICache   float64 // Σ I-cache miss delays
	LongData float64 // Σ serialized long D-miss delays (MLP-aware)
	VMisspec float64 // Σ value-misspeculation flush penalties
}

// Total returns the predicted cycle count.
func (b CPIBreakdown) Total() float64 {
	return b.Base + b.Bpred + b.ICache + b.LongData + b.VMisspec
}

// CPI returns the predicted cycles per instruction.
func (b CPIBreakdown) CPI() float64 {
	if b.Insts == 0 {
		return 0
	}
	return b.Total() / float64(b.Insts)
}

// PredictCPI evaluates the interval model over a functional profile.
func (m *Model) PredictCPI(p *Profile) (CPIBreakdown, error) {
	intervals, err := Segment(p.Events, p.Insts)
	if err != nil {
		return CPIBreakdown{}, err
	}
	b := CPIBreakdown{Insts: p.Insts - p.Warmup}
	dEff := m.effectiveDispatch(p)
	b.Base = float64(b.Insts) / dEff

	lat := m.Cfg.Mem.Lat
	// Overlap credit for an isolated (non-serial) long miss: while the miss
	// is outstanding, dispatch continues until the reorder buffer fills, so
	// the observable stall is the memory latency minus the window-fill time
	// (Karkhanis-Smith first-order treatment). Serial (pointer-chase) misses
	// find the window already blocked and pay in full.
	longCredit := float64(m.Cfg.ROBSize) / dEff
	longCost := float64(lat.Mem) - longCredit
	if longCost < float64(lat.Mem)/4 {
		longCost = float64(lat.Mem) / 4
	}
	if m.Opts.NoOverlapCredit {
		longCost = float64(lat.Mem)
	}
	parent := make(map[uint64]uint64, p.LongSerial)
	if !m.Opts.NoSerialMisses {
		for _, ev := range p.Events {
			if ev.Kind == uarch.EvLongDMiss && ev.Serial {
				parent[ev.Index] = ev.Parent
			}
		}
	}
	// Long D-miss handling: misses whose leading edges fall within one
	// reorder window form a cluster that overlaps in memory (MLP). Within a
	// cluster, address-dependent misses (pointer chases) form chains that
	// serialize, while parallel chains still overlap each other — so the
	// cluster pays its deepest local dependence chain times the memory
	// latency, with the window-fill credit applied once.
	var clusterStart uint64
	var clusterDepths map[uint64]float64
	var clusterMax float64
	flushCluster := func() {
		if clusterDepths != nil {
			b.LongData += clusterMax*float64(lat.Mem) - (float64(lat.Mem) - longCost)
			clusterDepths = nil
		}
	}
	for _, iv := range intervals {
		if iv.Final {
			continue
		}
		evIdx := iv.End - 1
		switch iv.Kind {
		case uarch.EvBranchMispredict:
			b.Bpred += m.MispredictPenalty(iv.Len() - 1)
		case uarch.EvValueMisspec:
			// A confident-wrong value prediction flushes at dispatch and
			// resumes fetch when the misspeculated instruction executes —
			// the same drain-plus-refill shape as a branch mispredict.
			b.VMisspec += m.MispredictPenalty(iv.Len() - 1)
		case uarch.EvICacheMiss:
			if iv.Level == cache.LongMiss {
				b.ICache += float64(lat.Mem)
			} else {
				b.ICache += float64(lat.L2)
			}
		case uarch.EvLongDMiss:
			if clusterDepths == nil || evIdx-clusterStart >= uint64(m.Cfg.ROBSize) {
				flushCluster()
				clusterStart = evIdx
				clusterDepths = make(map[uint64]float64, 8)
				clusterMax = 0
			}
			depth := 1.0
			if par, ok := parent[evIdx]; ok {
				if pd, in := clusterDepths[par]; in {
					depth = pd + 1
				}
			}
			clusterDepths[evIdx] = depth
			if depth > clusterMax {
				clusterMax = depth
			}
		}
	}
	flushCluster()
	return b, nil
}

// effectiveDispatch returns the steady-state dispatch rate between miss
// events: the design width, capped by the program's inherent ILP under
// machine latencies (a full window cannot drain faster than ROB/K(ROB)) and
// by the fetch rate under taken-transfer fetch breaks (a fetch group ends at
// a taken branch, so groups of g instructions need about g/width + 1/2
// cycles).
func (m *Model) effectiveDispatch(p *Profile) float64 {
	dEff := float64(m.Cfg.DispatchWidth)
	if k := m.KLat.EvalInterp(m.Cfg.ROBSize); k > 0 && !m.Opts.NoILPCap {
		if lim := float64(m.Cfg.ROBSize) / k; lim < dEff {
			dEff = lim
		}
	}
	if p.TakenXfers > 0 && !m.Opts.NoFetchCap {
		// A taken transfer ends the fetch group; the refetch starts aligned
		// at the target, so a group of g instructions costs E[ceil(g/W)] ≈
		// g/W + (W−1)/2W cycles (uniform residual in the last fetch cycle).
		w := float64(m.Cfg.FetchWidth)
		g := float64(p.Insts-p.Warmup) / float64(p.TakenXfers)
		fetchRate := g / (g/w + (w-1)/(2*w))
		if fetchRate < dEff {
			dEff = fetchRate
		}
	}
	return dEff
}

// ValidationError compares the model's CPI prediction with a measured
// cycle-level result and returns the signed relative error.
func ValidationError(predicted CPIBreakdown, measured *uarch.Result) (float64, error) {
	if measured.Insts == 0 || measured.CPI() == 0 {
		return 0, fmt.Errorf("%w: measured result is empty", ErrBadInput)
	}
	return (predicted.CPI() - measured.CPI()) / measured.CPI(), nil
}
