package core

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// propWorkload derives a structurally valid workload configuration from a
// seed, spanning the generator's knob space (mirrors the derivation used by
// the uarch package's property tests so the two suites explore the same
// space).
func propWorkload(seed uint64) workload.Config {
	pick := func(shift uint, mod int) int { return int((seed >> shift) % uint64(mod)) }
	return workload.Config{
		Name: "prop", Seed: seed,
		Regions:          1 + pick(0, 12),
		BlocksPerRegion:  2 + pick(4, 16),
		BlockSize:        workload.Range{Min: 1 + pick(8, 4), Max: 5 + pick(10, 8)},
		LoopTrip:         workload.Range{Min: 1 + pick(12, 8), Max: 10 + pick(14, 30)},
		RegionTheta:      float64(pick(16, 15)) / 10,
		LoadFrac:         float64(pick(20, 30)) / 100,
		StoreFrac:        float64(pick(24, 15)) / 100,
		MulFrac:          float64(pick(26, 5)) / 100,
		DivFrac:          float64(pick(28, 2)) / 100,
		ChainProb:        float64(pick(30, 10)) / 10,
		RandomBranchFrac: float64(pick(34, 40)) / 100, RandomBranchBias: 0.5,
		PatternBranchFrac: float64(pick(38, 30)) / 100, TakenBias: 0.8 + float64(pick(42, 19))/100,
		DataFootprint: 64 << (10 + pick(46, 8)),
		StrideFrac:    float64(pick(50, 10)) / 10,
		Locality:      float64(pick(54, 18)) / 10,
	}
}

// TestDecompositionIdentityProperty checks the decomposition identity
//
//	Total = Frontend + BaseILP + FULatency + ShortDMiss + LongDMiss + Residual
//
// on randomized workloads simulated through the struct-of-arrays fast path
// (packed trace, precomputed dependences, pooled per-interval records) —
// the path every experiment now runs on. It also cross-checks that the
// pooled stat path produces the same mispredict records as the generic
// streaming path, so the identity is tested against the records the
// optimized simulator actually emits.
func TestDecompositionIdentityProperty(t *testing.T) {
	cfg := uarch.Baseline()
	f := func(seed uint64) bool {
		wc := propWorkload(seed)
		if err := wc.Validate(); err != nil {
			t.Logf("seed %d produced invalid config: %v", seed, err)
			return false
		}
		tr, err := trace.ReadAll(workload.MustNew(wc, 20_000))
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		opts := uarch.Options{RecordMispredicts: true, RecordLoadLevels: true}
		res, err := uarch.Run(trace.Pack(tr).Reader(), cfg, opts)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		generic, err := uarch.Run(tr.Reader(), cfg, opts)
		if err != nil {
			t.Logf("seed %d (generic): %v", seed, err)
			return false
		}
		if !reflect.DeepEqual(res.Records, generic.Records) {
			t.Logf("seed %d: pooled records diverge from generic path", seed)
			return false
		}

		d, err := NewDecomposer(tr, res)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for i, b := range d.DecomposeAll() {
			sum := b.Frontend + b.BaseILP + b.FULatency + b.ShortDMiss + b.LongDMiss + b.Residual
			if math.Abs(sum-b.Total) > 1e-9 {
				t.Logf("seed %d breakdown %d: components sum to %v, total %v", seed, i, sum, b.Total)
				return false
			}
			if b.Frontend != float64(cfg.FrontendDepth) {
				t.Logf("seed %d breakdown %d: frontend %v != depth %d", seed, i, b.Frontend, cfg.FrontendDepth)
				return false
			}
			if b.BaseILP < 0 || b.FULatency < 0 || b.ShortDMiss < 0 || b.LongDMiss < 0 {
				t.Logf("seed %d breakdown %d: negative monotone component %+v", seed, i, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
