package core

import (
	"reflect"
	"testing"

	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

// TestOverlayProfileMatchesFunctional is the profile-side equivalence gate:
// a profile reconstructed from the overlay must equal — DeepEqual, events
// and all — the one FunctionalProfile computes live, across workloads,
// window sizes (which move the serialized-miss marking), and warmup and
// instruction-limit windows. One overlay per workload serves every
// configuration, which is the sharing the model sweeps rely on.
func TestOverlayProfileMatchesFunctional(t *testing.T) {
	base := uarch.Baseline()
	smallrob := uarch.Baseline()
	smallrob.Name, smallrob.ROBSize, smallrob.IQSize = "smallrob", 32, 16
	bigrob := uarch.Baseline()
	bigrob.Name, bigrob.ROBSize, bigrob.IQSize = "bigrob", 512, 256
	cfgs := []uarch.Config{base, smallrob, bigrob}

	windows := []struct {
		name             string
		warmup, maxInsts uint64
	}{
		{"full", 0, 0},
		{"warmup", 10_000, 0},
		{"limited", 5_000, 33_000},
	}

	for _, wname := range []string{"gzip", "mcf", "crafty", "twolf"} {
		wc, ok := workload.SuiteConfig(wname)
		if !ok {
			t.Fatalf("unknown workload %s", wname)
		}
		tr, err := trace.ReadAll(workload.MustNew(wc, 40_000))
		if err != nil {
			t.Fatal(err)
		}
		soa := trace.Pack(tr)
		for _, cfg := range cfgs {
			ov, err := overlay.Compute(soa, cfg.Pred, cfg.Mem)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range windows {
				t.Run(wname+"/"+cfg.Name+"/"+w.name, func(t *testing.T) {
					live, err := FunctionalProfile(tr.Reader(), cfg, w.warmup, w.maxInsts)
					if err != nil {
						t.Fatal(err)
					}
					fromOv, err := OverlayProfile(soa, ov, cfg, w.warmup, w.maxInsts)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(live, fromOv) {
						t.Errorf("profiles differ:\nlive:    %+v\noverlay: %+v", live, fromOv)
					}
				})
			}
		}
	}
}

// TestOverlayProfileRejectsMismatch pins the validation: profiles are never
// silently built from an overlay that does not describe the requested
// configuration or trace.
func TestOverlayProfileRejectsMismatch(t *testing.T) {
	cfg := uarch.Baseline()
	wc, _ := workload.SuiteConfig("gzip")
	tr, err := trace.ReadAll(workload.MustNew(wc, 5_000))
	if err != nil {
		t.Fatal(err)
	}
	soa := trace.Pack(tr)
	ov, err := overlay.Compute(soa, cfg.Pred, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	other := trace.Pack(tr)
	if _, err := OverlayProfile(other, ov, cfg, 0, 0); err == nil {
		t.Error("different trace accepted")
	}
	changed := cfg
	changed.Pred.Entries = 2 * cfg.Pred.Entries
	if _, err := OverlayProfile(soa, ov, changed, 0, 0); err == nil {
		t.Error("mismatched predictor fingerprint accepted")
	}
	latOnly := cfg
	latOnly.Mem.Lat.Mem = 999
	if _, err := OverlayProfile(soa, ov, latOnly, 0, 0); err != nil {
		t.Errorf("latency-only change rejected: %v", err)
	}
}
