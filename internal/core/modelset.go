package core

import (
	"fmt"
	"sync"

	"intervalsim/internal/ilp"
	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
)

// ModelSet amortizes the expensive inputs of the analytic interval model
// across a family of configurations that share a trace, a speculation
// configuration (predictor + cache geometry), and all latencies — a timing
// sweep over dispatch width, frontend depth, and ROB size. BuildModel runs
// three ILP profiling passes per configuration; a ModelSet runs the
// unit-latency and machine-latency passes once, the branch-resolution pass
// once per distinct dispatch width, and the functional miss-event profile
// once per distinct ROB size, all straight off a precomputed overlay with no
// predictor or cache simulation at all.
//
// The sharing is sound because every characteristic is profiled over the
// window ladder of maxROB and only ever evaluated at or below a requested
// ROB size: For rejects a ROB size that is not an exact ladder node (a power
// of two up to maxROB, or maxROB itself), so interpolation between nodes
// never crosses a node the smaller ladder would have had. Predictions match
// a dedicated BuildModel exactly for every occupancy at or above the
// smallest ladder window (2); below it EvalInterp falls back to the fitted
// power law, whose coefficients see the extra high-window points — a
// sub-cycle difference worth <0.1% of CPI (TestModelSetMatchesBuildModel).
type ModelSet struct {
	soa      *trace.SoA
	ov       *overlay.Overlay
	base     uarch.Config
	maxROB   int
	warmup   uint64
	maxInsts int

	mu         sync.Mutex
	shared     bool // kunit/klat/shortRatio computed
	kunit      ilp.Characteristic
	klat       ilp.Characteristic
	shortRatio float64
	kres       map[int]ilp.Characteristic // by dispatch width
	prof       map[int]*Profile           // by ROB size
}

// NewModelSet prepares a model family over soa + ov. base fixes everything
// the family must share: the speculation configuration and the latencies.
// maxROB is the largest ROB size any For call will request; warmup and
// maxInsts bound the profiled region exactly as in OverlayProfile and
// BuildModel.
func NewModelSet(soa *trace.SoA, ov *overlay.Overlay, base uarch.Config, maxROB int, warmup uint64, maxInsts int) (*ModelSet, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if maxROB < 2 {
		return nil, fmt.Errorf("%w: ModelSet maxROB %d", ErrBadInput, maxROB)
	}
	if ov.Trace != soa {
		return nil, fmt.Errorf("%w: overlay was computed for a different trace", ErrBadInput)
	}
	if ov.PredFP != base.Pred.Fingerprint() || ov.MemFP != base.Mem.Fingerprint() ||
		ov.VPredFP != vpredConfigFP(base.VPred) {
		return nil, fmt.Errorf("%w: overlay fingerprints do not match the base configuration", ErrBadInput)
	}
	return &ModelSet{
		soa: soa, ov: ov, base: base, maxROB: maxROB,
		warmup: warmup, maxInsts: maxInsts,
		kres: make(map[int]ilp.Characteristic),
		prof: make(map[int]*Profile),
	}, nil
}

// fuLatencies extracts the per-pool execution latencies — the only part of
// the FU configuration the analytic model reads (counts gate issue bandwidth
// in the detailed simulator, not the model's latency function).
func fuLatencies(f uarch.FUs) [7]int {
	return [7]int{
		f.IntALU.Latency, f.IntMul.Latency, f.IntDiv.Latency,
		f.FPAdd.Latency, f.FPMul.Latency, f.FPDiv.Latency, f.MemPort.Latency,
	}
}

// For composes the analytic model and the functional profile for one member
// of the family, reusing every shared characteristic. It rejects — rather
// than silently mis-shares — a configuration whose speculation state,
// latencies, or ROB size fall outside the family contract. Safe for
// concurrent use.
func (s *ModelSet) For(cfg uarch.Config) (*Model, *Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Pred.Fingerprint() != s.ov.PredFP || cfg.Mem.Fingerprint() != s.ov.MemFP ||
		vpredConfigFP(cfg.VPred) != s.ov.VPredFP {
		return nil, nil, fmt.Errorf("%w: configuration's speculation state differs from the overlay's", ErrBadInput)
	}
	if cfg.Mem.Lat != s.base.Mem.Lat || fuLatencies(cfg.FU) != fuLatencies(s.base.FU) {
		return nil, nil, fmt.Errorf("%w: configuration's latencies differ from the model set's", ErrBadInput)
	}
	if !ladderNode(cfg.ROBSize, s.maxROB) {
		return nil, nil, fmt.Errorf("%w: ROB size %d is not a window-ladder node of maxROB %d", ErrBadInput, cfg.ROBSize, s.maxROB)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	prof, ok := s.prof[cfg.ROBSize]
	if !ok {
		var err error
		prof, err = OverlayProfile(s.soa, s.ov, cfg, s.warmup, uint64(s.maxInsts))
		if err != nil {
			return nil, nil, err
		}
		s.prof[cfg.ROBSize] = prof
	}
	windows := windowLadder(s.maxROB)
	mk := func() trace.Reader { return s.soa.Reader() }
	if !s.shared {
		// The short-miss ratio counts L1-hit vs L2-hit loads: a property of
		// the overlay, identical for every ROB size in the family.
		s.shortRatio = prof.ShortMissRatio()
		kunit, err := ilp.Profile(mk(), windows, ilp.UnitLatency, s.maxInsts)
		if err != nil {
			return nil, nil, err
		}
		klat, err := ilp.Profile(mk(), windows, MachineLatency(s.base, s.shortRatio), s.maxInsts)
		if err != nil {
			return nil, nil, err
		}
		s.kunit, s.klat, s.shared = kunit, klat, true
	}
	kres, ok := s.kres[cfg.DispatchWidth]
	if !ok {
		var err error
		kres, err = ilp.ProfileResolution(mk(), windows, MachineLatency(s.base, s.shortRatio), cfg.DispatchWidth, s.maxInsts, 4)
		if err != nil {
			return nil, nil, err
		}
		s.kres[cfg.DispatchWidth] = kres
	}
	return &Model{Cfg: cfg, KUnit: s.kunit, KLat: s.klat, KRes: kres}, prof, nil
}

// ladderNode reports whether rob is an exact node of windowLadder(maxROB).
func ladderNode(rob, maxROB int) bool {
	if rob == maxROB {
		return true
	}
	if rob < 2 || rob > maxROB {
		return false
	}
	return rob&(rob-1) == 0
}
