package core

import (
	"testing"

	"intervalsim/internal/isa"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/workload"
)

func TestCostliestBranchesAttribution(t *testing.T) {
	tr, res := runDetailed(t, testWorkload(), uarch.Baseline())
	costs := CostliestBranches(tr, res, 0)
	if len(costs) == 0 {
		t.Fatal("no branch costs attributed")
	}
	// Descending by total penalty.
	var sum float64
	var count uint64
	for i, c := range costs {
		if i > 0 && c.TotalPenalty > costs[i-1].TotalPenalty {
			t.Fatalf("costs not sorted at %d", i)
		}
		if c.Mispredicts == 0 || c.TotalPenalty <= 0 {
			t.Fatalf("degenerate cost entry %+v", c)
		}
		if c.AvgPenalty() < float64(uarch.Baseline().FrontendDepth) {
			t.Fatalf("avg penalty %v below frontend depth", c.AvgPenalty())
		}
		// The PC must belong to a control transfer in the trace (conditional
		// branches, or indirect jumps whose BTB misses also redirect fetch).
		found := false
		for j := range tr.Insts {
			if tr.Insts[j].PC == c.PC && tr.Insts[j].Class.IsControl() {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("cost attributed to non-control pc %#x", c.PC)
		}
		sum += c.TotalPenalty
		count += c.Mispredicts
	}
	// Totals must reconcile with the records.
	var recSum float64
	var recCount uint64
	for _, r := range res.Records {
		if p := r.Penalty(); p > 0 {
			recSum += p
			recCount++
		}
	}
	if sum != recSum || count != recCount {
		t.Errorf("attribution lost penalties: %v/%d vs %v/%d", sum, count, recSum, recCount)
	}
	// Top-k truncation.
	top3 := CostliestBranches(tr, res, 3)
	if len(top3) != 3 || top3[0] != costs[0] {
		t.Errorf("top-3 truncation wrong")
	}
}

func TestPredicateRemovesMispredictions(t *testing.T) {
	cfg := uarch.Baseline()
	tr, res := runDetailed(t, testWorkload(), cfg)
	costs := CostliestBranches(tr, res, 5)
	pcs := make(map[uint64]bool)
	for _, c := range costs {
		pcs[c.PC] = true
	}
	ptr := Predicate(tr, pcs)
	if ptr.Len() != tr.Len() {
		t.Fatal("predication changed trace length")
	}
	// Converted instructions are valid ALU ops; everything else untouched.
	changed := 0
	for i := range ptr.Insts {
		a, b := &tr.Insts[i], &ptr.Insts[i]
		if pcs[a.PC] && a.Class == isa.Branch {
			if b.Class != isa.IntALU {
				t.Fatalf("pc %#x not converted", a.PC)
			}
			if err := b.Validate(); err != nil {
				t.Fatalf("converted instruction invalid: %v", err)
			}
			changed++
		} else if *a != *b {
			t.Fatalf("untargeted instruction %d modified", i)
		}
	}
	if changed == 0 {
		t.Fatal("nothing converted")
	}
	// Re-simulation: the converted branches can no longer mispredict.
	res2, err := uarch.Run(ptr.Reader(), cfg, uarch.Options{RecordMispredicts: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Mispredicts >= res.Mispredicts {
		t.Errorf("predication did not reduce mispredictions: %d vs %d", res2.Mispredicts, res.Mispredicts)
	}
	// The original trace is untouched.
	for i := range tr.Insts {
		if tr.Insts[i].Class == isa.IntALU && pcs[tr.Insts[i].PC] {
			t.Fatal("Predicate mutated its input")
		}
	}
}

func TestPredicateEmptySetIsIdentity(t *testing.T) {
	tr, _ := trace.ReadAll(workloadReader(t, 5000))
	out := Predicate(tr, nil)
	for i := range tr.Insts {
		if tr.Insts[i] != out.Insts[i] {
			t.Fatal("empty predication changed the trace")
		}
	}
}

func workloadReader(t *testing.T, n int) trace.Reader {
	t.Helper()
	g, err := newWorkloadReader(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newWorkloadReader(n int) (trace.Reader, error) {
	return workload.New(testWorkload(), n)
}
