package core

import (
	"math"
	"reflect"
	"testing"

	"intervalsim/internal/overlay"
	"intervalsim/internal/trace"
	"intervalsim/internal/uarch"
	"intervalsim/internal/vpred"
	"intervalsim/internal/workload"
)

func vspecWorkload(t *testing.T, name string, insts int) (workload.Config, *trace.Trace, *trace.SoA) {
	t.Helper()
	wc, ok := workload.SuiteConfig(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	tr, err := trace.ReadAll(workload.MustNew(wc, insts))
	if err != nil {
		t.Fatal(err)
	}
	return wc, tr, trace.Pack(tr)
}

// TestVPredProfileMatchesOverlayProfile extends the profile-side equivalence
// gate to value speculation: the functional profile driving a live
// vpred.Runner must DeepEqual the one reconstructed from a vpred-aware
// overlay's bits 6/7, events and all.
func TestVPredProfileMatchesOverlayProfile(t *testing.T) {
	for _, wname := range []string{"gzip", "mcf"} {
		wc, tr, soa := vspecWorkload(t, wname, 40_000)
		for _, kind := range vpred.PresetNames() {
			cfg := uarch.Baseline()
			vp, _ := vpred.Preset(kind)
			vp.Stream = wc.ValueStream()
			cfg.VPred = &vp
			ov, err := overlay.ComputeSpec(soa, cfg.Pred, cfg.Mem, cfg.VPred)
			if err != nil {
				t.Fatal(err)
			}
			live, err := FunctionalProfile(tr.Reader(), cfg, 10_000, 0)
			if err != nil {
				t.Fatal(err)
			}
			fromOv, err := OverlayProfile(soa, ov, cfg, 10_000, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(live, fromOv) {
				t.Errorf("%s/%s: overlay profile differs from functional profile", wname, kind)
			}
			if live.ValuePredHits == 0 || live.ValueMisspecs == 0 {
				t.Errorf("%s/%s: profile shows no value-speculation activity (hits %d, misspecs %d)",
					wname, kind, live.ValuePredHits, live.ValueMisspecs)
			}
		}
	}
}

// TestOverlayProfileRejectsVPredMismatch pins the fingerprint gate in both
// directions: unlike the cycle-level replay's silent fallback, profile
// reconstruction treats a mismatched overlay as a caller error.
func TestOverlayProfileRejectsVPredMismatch(t *testing.T) {
	wc, _, soa := vspecWorkload(t, "gzip", 20_000)
	cfg := uarch.Baseline()
	vp, _ := vpred.Preset("stride")
	vp.Stream = wc.ValueStream()
	cfg.VPred = &vp

	plain, err := overlay.Compute(soa, cfg.Pred, cfg.Mem)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OverlayProfile(soa, plain, cfg, 0, 0); err == nil {
		t.Error("vpred config accepted a vpred-less overlay")
	}
	vov, err := overlay.ComputeSpec(soa, cfg.Pred, cfg.Mem, cfg.VPred)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OverlayProfile(soa, vov, uarch.Baseline(), 0, 0); err == nil {
		t.Error("classic config accepted a vpred overlay")
	}
	if _, err := NewModelSet(soa, vov, uarch.Baseline(), uarch.Baseline().ROBSize, 0, 0); err == nil {
		t.Error("NewModelSet accepted a vpred overlay for a classic base config")
	}
}

// TestPredictCPIChargesValueMisspecs checks the analytic model carries the
// new miss-event class through to the cycle stack: a profile with value
// misspeculations yields a positive VMisspec term included in the total.
func TestPredictCPIChargesValueMisspecs(t *testing.T) {
	wc, tr, _ := vspecWorkload(t, "mcf", 40_000)
	cfg := uarch.Baseline()
	vp, _ := vpred.Preset("last-value")
	vp.Stream = wc.ValueStream()
	cfg.VPred = &vp

	prof, err := FunctionalProfile(tr.Reader(), cfg, 10_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if prof.ValueMisspecs == 0 {
		t.Skip("no misspeculations in this trace; nothing to charge")
	}
	m, err := BuildModel(func() trace.Reader { return tr.Reader() }, cfg, prof.ShortMissRatio(), 40_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.PredictCPI(prof)
	if err != nil {
		t.Fatal(err)
	}
	if b.VMisspec <= 0 {
		t.Errorf("VMisspec = %v, want > 0 for %d misspeculations", b.VMisspec, prof.ValueMisspecs)
	}
	if got := b.Base + b.Bpred + b.ICache + b.LongData + b.VMisspec; math.Abs(got-b.Total()) > 1e-9 {
		t.Errorf("Total() = %v does not include VMisspec (sum %v)", b.Total(), got)
	}
}

// TestFrontendRefillStretchedByFetchRate pins the fetch-rate-adjusted refill
// term: at rate r the modeled refill grows by exactly 1/r − 1 cycles, and
// rates 0 and 1 leave it untouched.
func TestFrontendRefillStretchedByFetchRate(t *testing.T) {
	cfg := uarch.Baseline()
	base := frontendRefill(cfg)
	if base != float64(cfg.FrontendDepth) {
		t.Fatalf("full-rate refill = %v, want %d", base, cfg.FrontendDepth)
	}
	cfg.FetchRate = 1
	if got := frontendRefill(cfg); got != base {
		t.Errorf("rate 1 refill = %v, want %v", got, base)
	}
	cfg.FetchRate = 0.5
	if got := frontendRefill(cfg); math.Abs(got-(base+1)) > 1e-9 {
		t.Errorf("rate 0.5 refill = %v, want %v", got, base+1)
	}
	cfg.FetchRate = 0.25
	if got := frontendRefill(cfg); math.Abs(got-(base+3)) > 1e-9 {
		t.Errorf("rate 0.25 refill = %v, want %v", got, base+3)
	}
}
