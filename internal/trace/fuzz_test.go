package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzRead asserts the binary decoder never panics and never silently
// accepts input it cannot faithfully re-encode.
func FuzzRead(f *testing.F) {
	// Seed with a small valid trace and a few mutations of it.
	valid := randomTrace(99, 32)
	var buf bytes.Buffer
	if err := Write(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IVTR\x01\x00"))
	f.Add([]byte("IVTR"))
	f.Add([]byte{})
	mutated := append([]byte(nil), buf.Bytes()...)
	if len(mutated) > 10 {
		mutated[9] ^= 0xff
	}
	f.Add(mutated)

	// Boundary crashers found while pinning the decoder's edge behavior
	// (see boundary_test.go): lying counts that stress the preallocation
	// cap, truncation at the last record, and trailing bytes past the
	// declared count.
	f.Add(headerWithCount(1 << 20))            // count exactly at the preallocation cap, no body
	f.Add(headerWithCount(1<<20 + 1))          // one past the cap
	f.Add(headerWithCount(^uint64(0)))         // maximal lying count
	f.Add(buf.Bytes()[:buf.Len()-1])           // one byte short of the final record
	f.Add(append(append([]byte(nil), buf.Bytes()...), 0x00)) // one trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine
		}
		// Accepted input must round-trip.
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if tr.Len() != tr2.Len() {
			t.Fatalf("round trip changed length: %d vs %d", tr.Len(), tr2.Len())
		}
	})
}

// TestCorruptionInjection is the deterministic companion to FuzzRead: a
// table of systematic corruptions — truncation at every byte (covering every
// record and field boundary) and a bit flip at every byte — each of which
// must either be rejected with a descriptive ErrCorrupt-wrapped error or
// decode into a trace that faithfully round-trips.
func TestCorruptionInjection(t *testing.T) {
	valid := randomTrace(7, 24)
	var buf bytes.Buffer
	if err := Write(&buf, valid); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Collect the record boundary offsets with a counting decode.
	dec, n, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	boundaries := []int64{dec.Offset()} // end of header
	for {
		if _, err := dec.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, dec.Offset())
	}
	if uint64(len(boundaries)-1) != n || boundaries[len(boundaries)-1] != int64(len(data)) {
		t.Fatalf("boundary scan saw %d records ending at %d; want %d ending at %d",
			len(boundaries)-1, boundaries[len(boundaries)-1], n, len(data))
	}

	t.Run("truncation", func(t *testing.T) {
		// Every proper prefix — which includes every record boundary and
		// every mid-field position — must be rejected, with ErrCorrupt.
		for cut := 0; cut < len(data); cut++ {
			_, err := Read(bytes.NewReader(data[:cut]))
			if err == nil {
				t.Fatalf("truncation to %d bytes accepted", cut)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation to %d bytes: err = %v, want ErrCorrupt", cut, err)
			}
		}
		// Boundary truncations beyond the header lose whole records: the
		// error must be a descriptive record-level one, not a header error.
		for i, b := range boundaries[:len(boundaries)-1] {
			_, err := Read(bytes.NewReader(data[:b]))
			if err == nil || !errors.Is(err, ErrCorrupt) {
				t.Fatalf("boundary %d (offset %d): err = %v", i, b, err)
			}
			if !strings.Contains(err.Error(), "record") && !strings.Contains(err.Error(), "offset") {
				t.Errorf("boundary %d error lacks context: %v", i, err)
			}
		}
	})

	t.Run("bitflips", func(t *testing.T) {
		for pos := 0; pos < len(data); pos++ {
			for _, mask := range []byte{0x01, 0x80, 0xff} {
				mut := append([]byte(nil), data...)
				mut[pos] ^= mask
				tr, err := Read(bytes.NewReader(mut))
				if err != nil {
					if !errors.Is(err, ErrCorrupt) {
						t.Fatalf("flip %#x at %d: err = %v, want ErrCorrupt", mask, pos, err)
					}
					continue
				}
				// Accepted: the decode must be self-consistent (round-trip).
				var out bytes.Buffer
				if err := Write(&out, tr); err != nil {
					t.Fatalf("flip %#x at %d: accepted trace failed to re-encode: %v", mask, pos, err)
				}
				tr2, err := Read(&out)
				if err != nil {
					t.Fatalf("flip %#x at %d: re-encoded trace rejected: %v", mask, pos, err)
				}
				if tr.Len() != tr2.Len() {
					t.Fatalf("flip %#x at %d: round trip changed length %d -> %d", mask, pos, tr.Len(), tr2.Len())
				}
			}
		}
	})

	t.Run("trailing-garbage", func(t *testing.T) {
		mut := append(append([]byte(nil), data...), 0xde, 0xad)
		_, err := Read(bytes.NewReader(mut))
		if err == nil || !errors.Is(err, ErrCorrupt) {
			t.Fatalf("trailing garbage: err = %v, want ErrCorrupt", err)
		}
		if !strings.Contains(err.Error(), "trailing") {
			t.Errorf("trailing-garbage error not descriptive: %v", err)
		}
	})
}

// TestDecoderErrorContext asserts decode errors carry the record index,
// field name, and byte offset.
func TestDecoderErrorContext(t *testing.T) {
	valid := randomTrace(11, 8)
	var buf bytes.Buffer
	if err := Write(&buf, valid); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	_, err := Read(bytes.NewReader(data[:len(data)-1])) // clip the last field
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
	msg := err.Error()
	for _, want := range []string{"record", "field", "offset"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

// FuzzReadText asserts the text decoder never panics and that accepted
// input re-encodes.
func FuzzReadText(f *testing.F) {
	valid := randomTrace(98, 16)
	var buf bytes.Buffer
	if err := WriteText(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("0x1000 IntALU r1 r2 r3\n")
	f.Add("# only a comment\n\n")
	f.Add("0x1000 Load r1 - r2 @0x8000 garbage")

	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, tr); err != nil {
			t.Fatalf("accepted text trace failed to re-encode: %v", err)
		}
	})
}
