package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead asserts the binary decoder never panics and never silently
// accepts input it cannot faithfully re-encode.
func FuzzRead(f *testing.F) {
	// Seed with a small valid trace and a few mutations of it.
	valid := randomTrace(99, 32)
	var buf bytes.Buffer
	if err := Write(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("IVTR\x01\x00"))
	f.Add([]byte("IVTR"))
	f.Add([]byte{})
	mutated := append([]byte(nil), buf.Bytes()...)
	if len(mutated) > 10 {
		mutated[9] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine
		}
		// Accepted input must round-trip.
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if tr.Len() != tr2.Len() {
			t.Fatalf("round trip changed length: %d vs %d", tr.Len(), tr2.Len())
		}
	})
}

// FuzzReadText asserts the text decoder never panics and that accepted
// input re-encodes.
func FuzzReadText(f *testing.F) {
	valid := randomTrace(98, 16)
	var buf bytes.Buffer
	if err := WriteText(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("0x1000 IntALU r1 r2 r3\n")
	f.Add("# only a comment\n\n")
	f.Add("0x1000 Load r1 - r2 @0x8000 garbage")

	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, tr); err != nil {
			t.Fatalf("accepted text trace failed to re-encode: %v", err)
		}
	})
}
