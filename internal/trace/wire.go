package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Wire format for packed traces, used by the fleet's peer cache-fill RPC
// (GET/POST /v1/cache/trace/<fingerprint>): one daemon that has already
// paid for generating and packing a trace serves the finished SoA bytes to
// a peer that would otherwise recompute them. The frame is self-validating
// — magic, record count, and a trailing CRC32C over the payload — and the
// decoder additionally checks the structural invariants Pack establishes
// (dependence indices strictly behind their consumer), so a truncated or
// corrupted fill can never reach the simulator.
//
// Layout (little-endian):
//
//	8-byte magic "ISSOA1\r\n"
//	u32 record count n
//	n × u64  PC
//	n × u64  Addr
//	n × u64  Target
//	n × i8   Src1
//	n × i8   Src2
//	n × i8   Dst
//	n × u8   Meta
//	n × i32  Dep1
//	n × i32  Dep2
//	n × i32  DepMem
//	u32 crc32c over everything after the magic, up to here
var soaWireMagic = [8]byte{'I', 'S', 'S', 'O', 'A', '1', '\r', '\n'}

const soaWireRecordBytes = 8 + 8 + 8 + 1 + 1 + 1 + 1 + 4 + 4 + 4 // 40

var soaCRCTable = crc32.MakeTable(crc32.Castagnoli)

// WireSizeFor returns the encoded size of an n-record trace frame, so
// callers can derive transfer bounds from an instruction budget.
func WireSizeFor(n int) int {
	return len(soaWireMagic) + 4 + n*soaWireRecordBytes + 4
}

// WireSize returns the encoded size of the packed trace in bytes, so
// callers can enforce transfer bounds before materializing the frame.
func (s *SoA) WireSize() int { return WireSizeFor(s.Len()) }

// EncodeWire serializes the packed trace into the self-validating wire
// frame described above.
func (s *SoA) EncodeWire() []byte {
	n := s.Len()
	buf := make([]byte, s.WireSize())
	copy(buf, soaWireMagic[:])
	binary.LittleEndian.PutUint32(buf[8:], uint32(n))
	at := 12
	for _, v := range s.PC {
		binary.LittleEndian.PutUint64(buf[at:], v)
		at += 8
	}
	for _, v := range s.Addr {
		binary.LittleEndian.PutUint64(buf[at:], v)
		at += 8
	}
	for _, v := range s.Target {
		binary.LittleEndian.PutUint64(buf[at:], v)
		at += 8
	}
	for _, v := range s.Src1 {
		buf[at] = uint8(v)
		at++
	}
	for _, v := range s.Src2 {
		buf[at] = uint8(v)
		at++
	}
	for _, v := range s.Dst {
		buf[at] = uint8(v)
		at++
	}
	at += copy(buf[at:], s.Meta)
	for _, v := range s.Dep1 {
		binary.LittleEndian.PutUint32(buf[at:], uint32(v))
		at += 4
	}
	for _, v := range s.Dep2 {
		binary.LittleEndian.PutUint32(buf[at:], uint32(v))
		at += 4
	}
	for _, v := range s.DepMem {
		binary.LittleEndian.PutUint32(buf[at:], uint32(v))
		at += 4
	}
	binary.LittleEndian.PutUint32(buf[at:], crc32.Checksum(buf[8:at], soaCRCTable))
	return buf
}

// DecodeWire parses and validates a wire frame back into a packed trace.
// maxRecords bounds the accepted trace length (<= 0 means the int32 packing
// limit); the checksum and the per-record dependence invariants are always
// verified, so the returned SoA is safe to hand to the simulator's fast
// path even when the bytes came from an untrusted peer.
func DecodeWire(data []byte, maxRecords int) (*SoA, error) {
	if maxRecords <= 0 {
		maxRecords = maxSoALen
	}
	if len(data) < len(soaWireMagic)+4+4 {
		return nil, fmt.Errorf("trace: wire frame too short (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != soaWireMagic {
		return nil, fmt.Errorf("trace: bad wire magic")
	}
	n := int(binary.LittleEndian.Uint32(data[8:]))
	if n > maxRecords {
		return nil, fmt.Errorf("trace: wire frame carries %d records, cap %d", n, maxRecords)
	}
	want := len(soaWireMagic) + 4 + n*soaWireRecordBytes + 4
	if len(data) != want {
		return nil, fmt.Errorf("trace: wire frame is %d bytes, want %d for %d records", len(data), want, n)
	}
	body := data[8 : len(data)-4]
	if got := crc32.Checksum(body, soaCRCTable); got != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, fmt.Errorf("trace: wire frame checksum mismatch")
	}

	s := newSoA(n)
	at := 12
	s.PC = s.PC[:n]
	for i := range s.PC {
		s.PC[i] = binary.LittleEndian.Uint64(data[at:])
		at += 8
	}
	s.Addr = s.Addr[:n]
	for i := range s.Addr {
		s.Addr[i] = binary.LittleEndian.Uint64(data[at:])
		at += 8
	}
	s.Target = s.Target[:n]
	for i := range s.Target {
		s.Target[i] = binary.LittleEndian.Uint64(data[at:])
		at += 8
	}
	s.Src1 = s.Src1[:n]
	for i := range s.Src1 {
		s.Src1[i] = int8(data[at])
		at++
	}
	s.Src2 = s.Src2[:n]
	for i := range s.Src2 {
		s.Src2[i] = int8(data[at])
		at++
	}
	s.Dst = s.Dst[:n]
	for i := range s.Dst {
		s.Dst[i] = int8(data[at])
		at++
	}
	s.Meta = s.Meta[:n]
	at += copy(s.Meta, data[at:at+n])
	s.Dep1 = s.Dep1[:n]
	for i := range s.Dep1 {
		s.Dep1[i] = int32(binary.LittleEndian.Uint32(data[at:]))
		at += 4
	}
	s.Dep2 = s.Dep2[:n]
	for i := range s.Dep2 {
		s.Dep2[i] = int32(binary.LittleEndian.Uint32(data[at:]))
		at += 4
	}
	s.DepMem = s.DepMem[:n]
	for i := range s.DepMem {
		s.DepMem[i] = int32(binary.LittleEndian.Uint32(data[at:]))
		at += 4
	}

	// Structural invariants: every dependence index points strictly behind
	// its consumer (or is NoDep). The simulator indexes these arrays without
	// bounds checks of its own, so a frame that passed the checksum but
	// carries nonsense indices is still rejected here.
	for i := 0; i < n; i++ {
		if d := s.Dep1[i]; d != NoDep && (d < 0 || d >= int32(i)) {
			return nil, fmt.Errorf("trace: wire record %d: Dep1 %d out of range", i, d)
		}
		if d := s.Dep2[i]; d != NoDep && (d < 0 || d >= int32(i)) {
			return nil, fmt.Errorf("trace: wire record %d: Dep2 %d out of range", i, d)
		}
		if d := s.DepMem[i]; d != NoDep && (d < 0 || d >= int32(i)) {
			return nil, fmt.Errorf("trace: wire record %d: DepMem %d out of range", i, d)
		}
	}
	return s, nil
}
