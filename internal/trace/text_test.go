package trace

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	orig := randomTrace(21, 2000)
	var buf bytes.Buffer
	if err := WriteText(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Insts, got.Insts) {
		t.Fatal("text round trip changed the trace")
	}
}

func TestTextRoundTripProperty(t *testing.T) {
	f := func(seed uint64, sz uint16) bool {
		orig := randomTrace(seed, int(sz%256))
		var buf bytes.Buffer
		if err := WriteText(&buf, orig); err != nil {
			return false
		}
		got, err := ReadText(&buf)
		if err != nil {
			return false
		}
		return len(orig.Insts) == 0 || reflect.DeepEqual(orig.Insts, got.Insts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTextSkipsCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
0x1000 IntALU r1 r2 r3

0x1004 Load r1 - r2 @0x8000
`
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("parsed %d insts, want 2", tr.Len())
	}
}

func TestTextHumanReadable(t *testing.T) {
	orig := randomTrace(22, 10)
	var buf bytes.Buffer
	if err := WriteText(&buf, orig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "0x") {
		t.Error("no hex addresses in text output")
	}
	if lines := strings.Count(out, "\n"); lines != 10 {
		t.Errorf("%d lines for 10 insts", lines)
	}
}

func TestTextRejectsGarbage(t *testing.T) {
	bad := []string{
		"0x1000",                           // too few fields
		"zzz IntALU r1 r2 r3",              // bad pc
		"0x1000 Frobnicate r1 r2 r3",       // bad class
		"0x1000 IntALU rX r2 r3",           // bad register
		"0x1000 IntALU r1 r2 r99",          // register out of range
		"0x1000 Load r1 - r2 @nope",        // bad address
		"0x1000 Branch r1 - - T->nope",     // bad target
		"0x1000 IntALU r1 r2 r3 wat",       // trailing junk
		"0x1000 Load r1 - r2",              // load without address (Validate)
		"0x1000 IntALU r1 r2 r3 T->0x2000", // control fields on ALU (Validate)
	}
	for _, line := range bad {
		if _, err := ReadText(strings.NewReader(line)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("line %q: err = %v, want ErrCorrupt", line, err)
		}
	}
}

func TestWriteTextRejectsInvalid(t *testing.T) {
	tr := randomTrace(23, 3)
	tr.Insts[1].Class = 200
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err == nil {
		t.Fatal("invalid instruction accepted")
	}
}
