package trace

import (
	"bufio"
	"encoding/binary"
	"io"
)

// byteWriter batches small writes and defers error handling to flush, which
// keeps the encoder hot loop free of per-byte error checks.
type byteWriter struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func newByteWriter(w io.Writer) *byteWriter {
	return &byteWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

func (b *byteWriter) byte(v byte) {
	if b.err == nil {
		b.err = b.w.WriteByte(v)
	}
}

func (b *byteWriter) bytes(v []byte) {
	if b.err == nil {
		_, b.err = b.w.Write(v)
	}
}

func (b *byteWriter) uvarint(v uint64) {
	n := binary.PutUvarint(b.buf[:], v)
	b.bytes(b.buf[:n])
}

func (b *byteWriter) svarint(v int64) {
	n := binary.PutVarint(b.buf[:], v)
	b.bytes(b.buf[:n])
}

func (b *byteWriter) flush() error {
	if b.err != nil {
		return b.err
	}
	return b.w.Flush()
}

// byteReader adapts an io.Reader for varint decoding with buffering.
type byteReader struct {
	r *bufio.Reader
}

func newByteReader(r io.Reader) *byteReader {
	return &byteReader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (b *byteReader) read(p []byte) error {
	_, err := io.ReadFull(b.r, p)
	return err
}

func (b *byteReader) readByte() (byte, error) { return b.r.ReadByte() }

func (b *byteReader) uvarint() (uint64, error) { return binary.ReadUvarint(b.r) }

func (b *byteReader) svarint() (int64, error) { return binary.ReadVarint(b.r) }
