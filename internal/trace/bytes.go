package trace

import (
	"bufio"
	"encoding/binary"
	"io"
)

// byteWriter batches small writes and defers error handling to flush, which
// keeps the encoder hot loop free of per-byte error checks.
type byteWriter struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func newByteWriter(w io.Writer) *byteWriter {
	return &byteWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

func (b *byteWriter) byte(v byte) {
	if b.err == nil {
		b.err = b.w.WriteByte(v)
	}
}

func (b *byteWriter) bytes(v []byte) {
	if b.err == nil {
		_, b.err = b.w.Write(v)
	}
}

func (b *byteWriter) uvarint(v uint64) {
	n := binary.PutUvarint(b.buf[:], v)
	b.bytes(b.buf[:n])
}

func (b *byteWriter) svarint(v int64) {
	n := binary.PutVarint(b.buf[:], v)
	b.bytes(b.buf[:n])
}

func (b *byteWriter) flush() error {
	if b.err != nil {
		return b.err
	}
	return b.w.Flush()
}

// byteReader adapts an io.Reader for varint decoding with buffering, and
// tracks the stream offset of every byte it hands out so decoding errors can
// report exactly where the input went bad.
type byteReader struct {
	r   *bufio.Reader
	off int64 // bytes consumed from the underlying stream
}

func newByteReader(r io.Reader) *byteReader {
	return &byteReader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (b *byteReader) read(p []byte) error {
	n, err := io.ReadFull(b.r, p)
	b.off += int64(n)
	return err
}

// ReadByte implements io.ByteReader (for binary.ReadUvarint/ReadVarint).
func (b *byteReader) ReadByte() (byte, error) {
	c, err := b.r.ReadByte()
	if err == nil {
		b.off++
	}
	return c, err
}

func (b *byteReader) uvarint() (uint64, error) { return binary.ReadUvarint(b) }

func (b *byteReader) svarint() (int64, error) { return binary.ReadVarint(b) }
