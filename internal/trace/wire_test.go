package trace

import (
	"encoding/binary"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"
)

// TestWireRoundTrip: EncodeWire → DecodeWire is exact — the decoded SoA
// unpacks to the identical instruction sequence.
func TestWireRoundTrip(t *testing.T) {
	soa := Pack(randomTrace(7, 500))
	data := soa.EncodeWire()
	if len(data) != soa.WireSize() {
		t.Fatalf("frame is %d bytes, WireSize says %d", len(data), soa.WireSize())
	}
	if WireSizeFor(soa.Len()) != soa.WireSize() {
		t.Fatalf("WireSizeFor(%d) = %d, WireSize = %d", soa.Len(), WireSizeFor(soa.Len()), soa.WireSize())
	}
	got, err := DecodeWire(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Unpack(), soa.Unpack()) {
		t.Fatal("decoded trace differs from the original")
	}
}

func TestWireRoundTripEmpty(t *testing.T) {
	soa := Pack(&Trace{})
	got, err := DecodeWire(soa.EncodeWire(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("decoded %d records, want 0", got.Len())
	}
}

// TestWireRejectsCorruption: every single-byte flip anywhere in the frame is
// rejected — by the magic check, the length check, or the checksum.
func TestWireRejectsCorruption(t *testing.T) {
	soa := Pack(randomTrace(11, 64))
	data := soa.EncodeWire()
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := DecodeWire(mut, 0); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
	for _, cut := range []int{0, 8, 11, len(data) - 1} {
		if _, err := DecodeWire(data[:cut], 0); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := DecodeWire(append(append([]byte(nil), data...), 0), 0); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestWireRecordCap: a frame larger than the caller's record budget is
// refused before any allocation proportional to its claimed size.
func TestWireRecordCap(t *testing.T) {
	soa := Pack(randomTrace(3, 100))
	data := soa.EncodeWire()
	if _, err := DecodeWire(data, 99); err == nil {
		t.Fatal("100-record frame accepted under a 99-record cap")
	}
	if _, err := DecodeWire(data, 100); err != nil {
		t.Fatalf("frame at exactly the cap rejected: %v", err)
	}
}

// TestWireRejectsBadDeps: a frame that passes the checksum but carries a
// dependence index at or ahead of its consumer is still rejected — the
// simulator's fast path indexes these arrays without bounds checks.
func TestWireRejectsBadDeps(t *testing.T) {
	soa := Pack(randomTrace(5, 32))
	n := soa.Len()
	data := soa.EncodeWire()
	// Dep1 array starts after 3 u64 arrays, 3 i8 arrays, and Meta.
	dep1At := 12 + n*24 + n*4
	// Record 3 depending on itself: structurally invalid, checksum-valid
	// once re-signed.
	binary.LittleEndian.PutUint32(data[dep1At+3*4:], 3)
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.Checksum(data[8:len(data)-4], soaCRCTable))
	_, err := DecodeWire(data, 0)
	if err == nil || !strings.Contains(err.Error(), "Dep1") {
		t.Fatalf("self-dependence accepted (err = %v)", err)
	}
}
