package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"intervalsim/internal/isa"
)

// headerWithCount builds a valid header declaring n records and no body.
func headerWithCount(n uint64) []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(formatVersion)
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], n)])
	return buf.Bytes()
}

// TestReadPreallocationCapBoundary pins the exact boundary of the decoder's
// preallocation cap: declared counts at, just below, and just above 1<<20,
// plus absurd counts that would be multi-terabyte allocations if the count
// were trusted. A lying count (no records backing it) must fail with
// ErrCorrupt without the allocation ever happening.
func TestReadPreallocationCapBoundary(t *testing.T) {
	cases := []struct {
		name  string
		count uint64
	}{
		{"below cap", 1<<20 - 1},
		{"at cap", 1 << 20},
		{"above cap", 1<<20 + 1},
		{"absurd", 1 << 40},
		{"max", ^uint64(0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			_, err := Read(bytes.NewReader(headerWithCount(tc.count)))
			runtime.ReadMemStats(&ms1)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("count %d with empty body: got %v, want ErrCorrupt", tc.count, err)
			}
			// The cap bounds the preallocation at 1<<20 records regardless of
			// the declared count; leave generous slack for test-runtime noise.
			const slack = 256 << 20
			if grew := ms1.TotalAlloc - ms0.TotalAlloc; grew > slack {
				t.Fatalf("count %d allocated %d bytes; preallocation cap not applied", tc.count, grew)
			}
		})
	}
}

// TestReadAboveCapDecodes proves the cap is a preallocation hint only:
// a trace one record longer than the cap decodes completely and correctly
// (the slice grows past the capped hint).
func TestReadAboveCapDecodes(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-record round trip")
	}
	const n = 1<<20 + 1
	tr := &Trace{Insts: make([]isa.Inst, n)}
	for i := range tr.Insts {
		tr.Insts[i] = isa.Inst{PC: 0x400000 + uint64(i)*4, Class: isa.IntALU, Src1: 1, Src2: 2, Dst: 3}
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != n {
		t.Fatalf("decoded %d records, want %d", got.Len(), n)
	}
	if got.Insts[n-1] != tr.Insts[n-1] {
		t.Fatalf("last record mismatch: %+v vs %+v", got.Insts[n-1], tr.Insts[n-1])
	}
}

// recordOffsets returns the byte offset at which each record of an encoded
// trace starts, plus the offset one past the final record.
func recordOffsets(t *testing.T, encoded []byte, n int) []int64 {
	t.Helper()
	dec, cnt, err := NewDecoder(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	if cnt != uint64(n) {
		t.Fatalf("declared count %d, want %d", cnt, n)
	}
	offs := []int64{dec.Offset()}
	for i := 0; i < n; i++ {
		if _, err := dec.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		offs = append(offs, dec.Offset())
	}
	return offs
}

// TestReadLastRecordBoundary pins the decoder's behavior at the exact edges
// of the final record: truncation one byte short, truncation at the last
// record's start (count off by one against the body), and bodies one record
// longer than the count. Each must produce an ErrCorrupt-wrapped error whose
// record index and offset point at the real boundary.
func TestReadLastRecordBoundary(t *testing.T) {
	const n = 16
	tr := randomTrace(7, n)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()
	offs := recordOffsets(t, encoded, n)
	lastStart, end := offs[n-1], offs[n]

	cases := []struct {
		name string
		data []byte
		want []string // substrings the error must carry
	}{
		{
			// The body ends one byte into the final record's fields: the
			// error must name record n-1, not a neighbor.
			name: "one byte short of last record end",
			data: encoded[:end-1],
			want: []string{fmt.Sprintf("record %d", n-1)},
		},
		{
			// The body holds exactly n-1 records but the count says n: the
			// decoder hits EOF reading record n-1's head byte at the exact
			// offset where the missing record would begin.
			name: "count one past the body",
			data: encoded[:lastStart],
			want: []string{fmt.Sprintf("record %d", n-1), "head", fmt.Sprintf("offset %d", lastStart)},
		},
		{
			// One whole record of trailing bytes after the declared count:
			// the trailing-garbage check must report the surplus, not
			// silently return a shorter trace.
			name: "body one record past the count",
			data: patchCount(t, encoded, n-1),
			want: []string{"trailing bytes", fmt.Sprintf("%d declared records", n-1)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(tc.data))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q missing %q", err, w)
				}
			}
		})
	}

	// The exact complement: truncating at the final record boundary with a
	// matching count is a valid (shorter) trace, not an error.
	shorter, err := Read(bytes.NewReader(patchCount(t, encoded[:lastStart], n-1)))
	if err != nil {
		t.Fatalf("n-1 records with count n-1: %v", err)
	}
	if shorter.Len() != n-1 {
		t.Fatalf("got %d records, want %d", shorter.Len(), n-1)
	}
}

// patchCount rewrites the header's declared record count, preserving the
// body bytes (only valid when the new count's varint is the same width).
func patchCount(t *testing.T, encoded []byte, n int) []byte {
	t.Helper()
	hdr := len(magic) + 1
	_, w := binary.Uvarint(encoded[hdr:])
	var tmp [binary.MaxVarintLen64]byte
	nw := binary.PutUvarint(tmp[:], uint64(n))
	if nw != w {
		t.Fatalf("patched count varint width %d != original %d", nw, w)
	}
	out := append([]byte(nil), encoded...)
	copy(out[hdr:], tmp[:nw])
	return out
}

// TestDecoderEOFSticky: after the declared count is exhausted the decoder
// must keep returning io.EOF, even with more bytes on the stream.
func TestDecoderEOFSticky(t *testing.T) {
	tr := randomTrace(11, 3)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("surplus")
	dec, _, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := dec.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := dec.Next(); err != io.EOF {
			t.Fatalf("post-count Next() #%d: got %v, want io.EOF", i, err)
		}
	}
}
