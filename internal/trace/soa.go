package trace

import (
	"fmt"
	"io"

	"intervalsim/internal/isa"
)

// SoA is a dynamic trace decoded once into a struct-of-arrays layout, the
// preferred input for the cycle-level simulator's hot path. Where Trace
// stores one 40-byte isa.Inst per record, SoA keeps each field in its own
// parallel slice, so a consumer touching only a few fields (the fetch stage
// reads PCs, the scheduler reads dependence indices) streams through dense
// cache lines instead of strided structs.
//
// Beyond the layout change, Pack precomputes the dependence metadata the
// out-of-order scheduler would otherwise recover instruction by instruction:
// for every record, the trace index of its operand producers and — for loads
// — of the youngest earlier store to the same 8-byte word. The metadata is a
// property of the trace alone, so a trace packed once is reused across every
// machine configuration of a sweep with no per-run rediscovery.
//
// Invariants (established by Pack/PackReader, relied on by internal/uarch):
//
//   - All slices have identical length Len().
//   - Meta[i] packs the class in the low 4 bits and the taken flag in bit 4,
//     mirroring the binary format's head byte.
//   - Dep1[i]/Dep2[i] are the largest j < i with Dst[j] == Src1[i] (resp.
//     Src2[i]), or NoDep when the source is absent or never written earlier.
//   - DepMem[i] is, for loads only, the largest j < i where record j is a
//     store with Addr[j]/8 == Addr[i]/8, or NoDep; non-loads hold NoDep.
//   - Every record passed isa.Inst.Validate at pack time.
//
// A packed trace is immutable after Pack returns: no code in this module
// writes to the slices, and consumers that need a variant (e.g.
// core.Predicate) copy records out and re-pack. Sharing infrastructure
// depends on this — package overlay keys its miss-event cache on the *SoA
// pointer identity, which is only a valid cache key while the pointed-to
// contents never change.
type SoA struct {
	PC     []uint64
	Addr   []uint64
	Target []uint64
	Src1   []int8
	Src2   []int8
	Dst    []int8
	Meta   []uint8

	Dep1   []int32
	Dep2   []int32
	DepMem []int32
}

// NoDep marks an absent producer in the Dep1/Dep2/DepMem metadata.
const NoDep int32 = -1

// Meta byte layout: class in the low four bits, taken flag in bit 4.
const (
	MetaClassMask uint8 = 0x0f
	MetaTakenBit  uint8 = 1 << 4
)

// Len returns the number of dynamic instructions.
func (s *SoA) Len() int { return len(s.Meta) }

// Class returns the instruction class of record i.
func (s *SoA) Class(i int) isa.Class { return isa.Class(s.Meta[i] & MetaClassMask) }

// Taken reports the branch direction of record i.
func (s *SoA) Taken(i int) bool { return s.Meta[i]&MetaTakenBit != 0 }

// InstAt assembles record i into out without allocating.
func (s *SoA) InstAt(i int, out *isa.Inst) {
	out.PC = s.PC[i]
	out.Addr = s.Addr[i]
	out.Target = s.Target[i]
	out.Src1 = s.Src1[i]
	out.Src2 = s.Src2[i]
	out.Dst = s.Dst[i]
	out.Class = isa.Class(s.Meta[i] & MetaClassMask)
	out.Taken = s.Meta[i]&MetaTakenBit != 0
}

// At returns record i as an isa.Inst value.
func (s *SoA) At(i int) isa.Inst {
	var in isa.Inst
	s.InstAt(i, &in)
	return in
}

// maxSoALen bounds the packed trace length so dependence indices fit int32.
const maxSoALen = 1<<31 - 1

// Pack converts an in-memory trace to the struct-of-arrays layout and
// computes its dependence metadata in one pass. Records are assumed valid
// (traces from the decoder and the workload generator always are); Pack
// panics if the trace exceeds the 2^31-1 records an int32 dependence index
// can address.
func Pack(t *Trace) *SoA {
	s := newSoA(len(t.Insts))
	var reg regState
	for i := range t.Insts {
		s.appendInst(&t.Insts[i], &reg)
	}
	return s
}

// PackReader drains r into the struct-of-arrays layout, computing dependence
// metadata as it goes. It is the streaming analogue of Pack for traces that
// come from a generator or decoder rather than an in-memory slice.
func PackReader(r Reader) (*SoA, error) {
	s := newSoA(0)
	var reg regState
	for {
		in, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if s.Len() >= maxSoALen {
			return nil, fmt.Errorf("trace: packed trace exceeds %d records", maxSoALen)
		}
		s.appendInst(&in, &reg)
	}
	return s, nil
}

// regState tracks producer indices while packing: the most recent writer of
// each architectural register and the youngest store per 8-byte word.
type regState struct {
	producer [isa.NumRegs]int32
	store    map[uint64]int32
	init     bool
}

func (r *regState) ensure() {
	if r.init {
		return
	}
	for i := range r.producer {
		r.producer[i] = NoDep
	}
	r.store = make(map[uint64]int32)
	r.init = true
}

func newSoA(capHint int) *SoA {
	if capHint > maxSoALen {
		panic(fmt.Sprintf("trace: cannot pack %d records into int32 dependence indices", capHint))
	}
	return &SoA{
		PC:     make([]uint64, 0, capHint),
		Addr:   make([]uint64, 0, capHint),
		Target: make([]uint64, 0, capHint),
		Src1:   make([]int8, 0, capHint),
		Src2:   make([]int8, 0, capHint),
		Dst:    make([]int8, 0, capHint),
		Meta:   make([]uint8, 0, capHint),
		Dep1:   make([]int32, 0, capHint),
		Dep2:   make([]int32, 0, capHint),
		DepMem: make([]int32, 0, capHint),
	}
}

func (s *SoA) appendInst(in *isa.Inst, reg *regState) {
	reg.ensure()
	i := int32(len(s.Meta))
	meta := uint8(in.Class) & MetaClassMask
	if in.Taken {
		meta |= MetaTakenBit
	}
	dep := func(r int8) int32 {
		if r == isa.NoReg {
			return NoDep
		}
		return reg.producer[r]
	}
	d1, d2, dm := dep(in.Src1), dep(in.Src2), NoDep
	switch in.Class {
	case isa.Load:
		if p, ok := reg.store[in.Addr/8]; ok {
			dm = p
		}
	case isa.Store:
		reg.store[in.Addr/8] = i
	}
	if in.Dst != isa.NoReg {
		reg.producer[in.Dst] = i
	}
	s.PC = append(s.PC, in.PC)
	s.Addr = append(s.Addr, in.Addr)
	s.Target = append(s.Target, in.Target)
	s.Src1 = append(s.Src1, in.Src1)
	s.Src2 = append(s.Src2, in.Src2)
	s.Dst = append(s.Dst, in.Dst)
	s.Meta = append(s.Meta, meta)
	s.Dep1 = append(s.Dep1, d1)
	s.Dep2 = append(s.Dep2, d2)
	s.DepMem = append(s.DepMem, dm)
}

// Unpack converts back to the array-of-structs Trace (mostly for tests and
// tools that want the simple layout).
func (s *SoA) Unpack() *Trace {
	t := &Trace{Insts: make([]isa.Inst, s.Len())}
	for i := range t.Insts {
		s.InstAt(i, &t.Insts[i])
	}
	return t
}

// Reader returns a fresh streaming reader over the packed trace. The
// returned reader satisfies the ordinary Reader contract, and the simulator
// recognizes its concrete type to switch to the index-based hot path.
func (s *SoA) Reader() *SoAReader { return &SoAReader{soa: s} }

// SoAReader streams a packed trace through the generic Reader interface
// while exposing the underlying arrays for consumers that can use them.
type SoAReader struct {
	soa *SoA
	pos int
}

// Next implements Reader.
func (r *SoAReader) Next() (isa.Inst, error) {
	if r.pos >= r.soa.Len() {
		return isa.Inst{}, io.EOF
	}
	in := r.soa.At(r.pos)
	r.pos++
	return in, nil
}

// SoA returns the backing packed trace.
func (r *SoAReader) SoA() *SoA { return r.soa }

// Pos returns the number of records already consumed through Next.
func (r *SoAReader) Pos() int { return r.pos }
