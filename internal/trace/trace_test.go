package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"intervalsim/internal/isa"
	"intervalsim/internal/rng"
)

// randomTrace builds a structurally valid random trace for round-trip tests.
func randomTrace(seed uint64, n int) *Trace {
	s := rng.New(seed)
	t := &Trace{Insts: make([]isa.Inst, 0, n)}
	pc := uint64(0x400000)
	for i := 0; i < n; i++ {
		var in isa.Inst
		in.PC = pc
		in.Class = isa.Class(s.Intn(int(isa.NumClasses)))
		pick := func() int8 {
			if s.Bool(0.2) {
				return isa.NoReg
			}
			return int8(s.Intn(isa.NumRegs))
		}
		in.Src1, in.Src2, in.Dst = pick(), pick(), pick()
		switch {
		case in.Class.IsMem():
			in.Addr = 0x10000000 + uint64(s.Intn(1<<20))*8
		case in.Class.IsControl():
			in.Target = pc + uint64(s.Intn(4096))*4 - 8192
			in.Taken = s.Bool(0.6) || in.Class == isa.Jump
		}
		t.Insts = append(t.Insts, in)
		pc += 4
		if s.Bool(0.05) {
			pc += uint64(s.Intn(256)) * 4 // occasional jump in PC
		}
	}
	return t
}

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Trace{}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("expected empty trace, got %d insts", got.Len())
	}
}

func TestRoundTrip(t *testing.T) {
	orig := randomTrace(1, 5000)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Insts, got.Insts) {
		t.Fatal("round trip changed the trace")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, sz uint16) bool {
		orig := randomTrace(seed, int(sz%512))
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(orig.Insts) != len(got.Insts) {
			return false
		}
		return len(orig.Insts) == 0 || reflect.DeepEqual(orig.Insts, got.Insts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactness(t *testing.T) {
	tr := randomTrace(2, 10000)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	perInst := float64(buf.Len()) / float64(tr.Len())
	if perInst > 12 {
		t.Errorf("encoding too large: %.1f bytes/inst", perInst)
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	tr := &Trace{Insts: []isa.Inst{{Class: isa.NumClasses}}}
	if err := Write(io.Discard, tr); err == nil {
		t.Fatal("Write accepted invalid instruction")
	}
}

func TestReadBadMagic(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("NOPE\x01\x00")))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestReadBadVersion(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("IVTR\x63\x00")))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestReadTruncated(t *testing.T) {
	orig := randomTrace(3, 100)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix must produce an error, never a panic or silent success.
	for cut := 0; cut < len(full)-1; cut += 17 {
		_, err := Read(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
}

func TestReadGarbageBody(t *testing.T) {
	// Valid header claiming 1000 records followed by noise: must error.
	var buf bytes.Buffer
	buf.WriteString("IVTR\x01")
	buf.WriteByte(0xe8) // uvarint 1000 = 0xe8 0x07
	buf.WriteByte(0x07)
	for i := 0; i < 64; i++ {
		buf.WriteByte(byte(0xf0 | i))
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("garbage body accepted")
	}
}

func TestDecoderStreamsCount(t *testing.T) {
	orig := randomTrace(4, 321)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	dec, n, err := NewDecoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 321 {
		t.Fatalf("declared count = %d, want 321", n)
	}
	got := 0
	for {
		_, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got++
	}
	if got != 321 {
		t.Fatalf("decoded %d records, want 321", got)
	}
}

func TestReadAllAndCollect(t *testing.T) {
	orig := randomTrace(5, 50)
	all, err := ReadAll(orig.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Insts, all.Insts) {
		t.Fatal("ReadAll mismatch")
	}
	ten, err := Collect(orig.Reader(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if ten.Len() != 10 || !reflect.DeepEqual(orig.Insts[:10], ten.Insts) {
		t.Fatal("Collect(10) mismatch")
	}
	everything, err := Collect(orig.Reader(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if everything.Len() != orig.Len() {
		t.Fatal("Collect(0) should drain the reader")
	}
}

func TestLimitReader(t *testing.T) {
	orig := randomTrace(6, 50)
	lim := LimitReader(orig.Reader(), 7)
	count := 0
	for {
		_, err := lim.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 7 {
		t.Fatalf("LimitReader yielded %d, want 7", count)
	}
}

func TestSliceReaderEOFIsSticky(t *testing.T) {
	r := (&Trace{}).Reader()
	for i := 0; i < 3; i++ {
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("call %d: want io.EOF, got %v", i, err)
		}
	}
}
