package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"intervalsim/internal/isa"
)

// WriteText encodes t in a line-oriented, human-readable format, one
// instruction per line:
//
//	<pc> <class> [src1] [src2] [dst] [@addr] [T|N -> target]
//
// with registers as rN or "-", addresses in hex. The format round-trips via
// ReadText and exists for debugging and for diffing traces in reviews; the
// binary format is ~6 bytes/inst, the text format ~40.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for i := range t.Insts {
		in := &t.Insts[i]
		if err := in.Validate(); err != nil {
			return fmt.Errorf("trace: record %d: %w", i, err)
		}
		fmt.Fprintf(bw, "%#x %s %s %s %s", in.PC, in.Class, regText(in.Src1), regText(in.Src2), regText(in.Dst))
		if in.Class.IsMem() {
			fmt.Fprintf(bw, " @%#x", in.Addr)
		}
		if in.Class.IsControl() {
			dir := "N"
			if in.Taken {
				dir = "T"
			}
			fmt.Fprintf(bw, " %s->%#x", dir, in.Target)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadText decodes the text format produced by WriteText. Blank lines and
// lines starting with '#' are skipped.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		in, err := parseTextLine(line)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrCorrupt, lineNo, err)
		}
		t.Insts = append(t.Insts, in)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseTextLine(line string) (isa.Inst, error) {
	var in isa.Inst
	fields := strings.Fields(line)
	if len(fields) < 5 {
		return in, fmt.Errorf("want at least 5 fields, got %d", len(fields))
	}
	pc, err := strconv.ParseUint(fields[0], 0, 64)
	if err != nil {
		return in, fmt.Errorf("bad pc %q", fields[0])
	}
	in.PC = pc
	cls, ok := classByName(fields[1])
	if !ok {
		return in, fmt.Errorf("unknown class %q", fields[1])
	}
	in.Class = cls
	for i, p := range []*int8{&in.Src1, &in.Src2, &in.Dst} {
		r, err := parseReg(fields[2+i])
		if err != nil {
			return in, err
		}
		*p = r
	}
	for _, f := range fields[5:] {
		switch {
		case strings.HasPrefix(f, "@"):
			a, err := strconv.ParseUint(f[1:], 0, 64)
			if err != nil {
				return in, fmt.Errorf("bad address %q", f)
			}
			in.Addr = a
		case strings.HasPrefix(f, "T->"), strings.HasPrefix(f, "N->"):
			tgt, err := strconv.ParseUint(f[3:], 0, 64)
			if err != nil {
				return in, fmt.Errorf("bad target %q", f)
			}
			in.Target = tgt
			in.Taken = f[0] == 'T'
		default:
			return in, fmt.Errorf("unexpected field %q", f)
		}
	}
	if err := in.Validate(); err != nil {
		return in, err
	}
	return in, nil
}

func regText(r int8) string {
	if r == isa.NoReg {
		return "-"
	}
	return fmt.Sprintf("r%d", r)
}

func parseReg(s string) (int8, error) {
	if s == "-" {
		return isa.NoReg, nil
	}
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return int8(n), nil
}

func classByName(name string) (isa.Class, bool) {
	for c := isa.Class(0); c < isa.NumClasses; c++ {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}
