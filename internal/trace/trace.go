// Package trace provides the dynamic-instruction trace infrastructure: an
// in-memory trace type, streaming reader interfaces, and a compact binary
// on-disk format with delta/varint encoding.
//
// Everything downstream of the workload generator — the cycle-level
// simulator, the ILP profiler, and interval analysis — consumes traces
// through the Reader interface, so experiments can run either directly from
// a generator or from files produced once by cmd/tracegen.
package trace

import (
	"errors"
	"fmt"
	"io"

	"intervalsim/internal/isa"
)

// Reader streams dynamic instructions in program order.
// Next returns io.EOF after the last instruction.
type Reader interface {
	Next() (isa.Inst, error)
}

// Trace is an in-memory dynamic instruction trace.
type Trace struct {
	Insts []isa.Inst
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Insts) }

// Reader returns a fresh streaming reader over the trace.
func (t *Trace) Reader() Reader { return &sliceReader{insts: t.Insts} }

type sliceReader struct {
	insts []isa.Inst
	pos   int
}

func (r *sliceReader) Next() (isa.Inst, error) {
	if r.pos >= len(r.insts) {
		return isa.Inst{}, io.EOF
	}
	in := r.insts[r.pos]
	r.pos++
	return in, nil
}

// ReadAll drains r into an in-memory trace.
func ReadAll(r Reader) (*Trace, error) {
	t := &Trace{}
	for {
		in, err := r.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Insts = append(t.Insts, in)
	}
}

// Collect drains up to max instructions from r (all of them if max <= 0).
func Collect(r Reader, max int) (*Trace, error) {
	t := &Trace{}
	for max <= 0 || len(t.Insts) < max {
		in, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Insts = append(t.Insts, in)
	}
	return t, nil
}

// LimitReader returns a Reader that yields at most n instructions from r.
func LimitReader(r Reader, n int) Reader { return &limitReader{r: r, n: n} }

type limitReader struct {
	r Reader
	n int
}

func (l *limitReader) Next() (isa.Inst, error) {
	if l.n <= 0 {
		return isa.Inst{}, io.EOF
	}
	l.n--
	return l.r.Next()
}

// --- Binary format -----------------------------------------------------
//
// Layout:
//
//	magic "IVTR" | version byte | varint count
//	count records, each:
//	  head byte: class (low 4 bits) | taken flag (bit 4)
//	  src1, src2, dst bytes (0xff encodes NoReg)
//	  zigzag varint pc delta from previous record's pc
//	  for memory ops:  zigzag varint addr delta from previous memory addr
//	  for control ops: zigzag varint target delta from this record's pc
//
// Deltas keep typical records at 6–8 bytes. The format is self-terminating
// (count up front) so truncation is always detected.

var magic = [4]byte{'I', 'V', 'T', 'R'}

const formatVersion = 1

// ErrCorrupt is wrapped by all decoding errors caused by malformed input.
var ErrCorrupt = errors.New("trace: corrupt input")

// Write encodes t to w in the binary format.
func Write(w io.Writer, t *Trace) error {
	bw := newByteWriter(w)
	bw.bytes(magic[:])
	bw.byte(formatVersion)
	bw.uvarint(uint64(len(t.Insts)))
	var prevPC, prevAddr uint64
	for i := range t.Insts {
		in := &t.Insts[i]
		if err := in.Validate(); err != nil {
			return fmt.Errorf("trace: record %d: %w", i, err)
		}
		head := byte(in.Class)
		if in.Taken {
			head |= 1 << 4
		}
		bw.byte(head)
		bw.byte(regByte(in.Src1))
		bw.byte(regByte(in.Src2))
		bw.byte(regByte(in.Dst))
		bw.svarint(int64(in.PC - prevPC))
		prevPC = in.PC
		if in.Class.IsMem() {
			bw.svarint(int64(in.Addr - prevAddr))
			prevAddr = in.Addr
		}
		if in.Class.IsControl() {
			bw.svarint(int64(in.Target - in.PC))
		}
	}
	return bw.flush()
}

// Read decodes an entire binary trace from r. Unlike raw Decoder streaming
// it also rejects trailing garbage: input bytes past the declared record
// count mean the count field lied (a corrupt or truncated-then-patched
// file), not a shorter trace.
func Read(r io.Reader) (*Trace, error) {
	dec, n, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	// The count is attacker-controlled until the records back it up: cap the
	// preallocation so a corrupt count cannot force a huge allocation.
	capHint := n
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	t := &Trace{Insts: make([]isa.Inst, 0, capHint)}
	for {
		in, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Insts = append(t.Insts, in)
	}
	if _, err := dec.br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("%w: %d trailing bytes after the %d declared records at offset %d",
			ErrCorrupt, remaining(dec.br), n, dec.Offset()-1)
	}
	return t, nil
}

// remaining counts the bytes left on a reader that has already yielded one
// unexpected byte (for the trailing-garbage diagnostic only).
func remaining(br *byteReader) int64 {
	n := int64(1)
	for {
		if _, err := br.ReadByte(); err != nil {
			return n
		}
		n++
	}
}

// Decoder streams instructions from a binary-format trace.
type Decoder struct {
	br       *byteReader
	remain   uint64
	index    uint64 // records decoded so far, for error context
	prevPC   uint64
	prevAddr uint64
}

// NewDecoder validates the header of a binary trace on r and returns a
// streaming decoder plus the declared instruction count.
func NewDecoder(r io.Reader) (*Decoder, uint64, error) {
	br := newByteReader(r)
	var hdr [4]byte
	if err := br.read(hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: short header at offset %d: %v", ErrCorrupt, br.off, err)
	}
	if hdr != magic {
		return nil, 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: missing version at offset %d: %v", ErrCorrupt, br.off, err)
	}
	if ver != formatVersion {
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, ver)
	}
	n, err := br.uvarint()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: bad count at offset %d: %v", ErrCorrupt, br.off, err)
	}
	return &Decoder{br: br, remain: n}, n, nil
}

// Offset returns the number of input bytes consumed so far; after an error
// it points just past the bytes that failed to decode.
func (d *Decoder) Offset() int64 { return d.br.off }

// corrupt builds a decoding error carrying the record index, the field being
// decoded, and the stream offset.
func (d *Decoder) corrupt(field string, err error) error {
	return fmt.Errorf("%w: record %d field %s at offset %d: %v", ErrCorrupt, d.index, field, d.br.off, err)
}

// Next implements Reader.
func (d *Decoder) Next() (isa.Inst, error) {
	if d.remain == 0 {
		return isa.Inst{}, io.EOF
	}
	var in isa.Inst
	head, err := d.br.ReadByte()
	if err != nil {
		return in, d.corrupt("head", err)
	}
	in.Class = isa.Class(head & 0x0f)
	in.Taken = head&(1<<4) != 0
	for _, f := range [3]struct {
		name string
		p    *int8
	}{{"src1", &in.Src1}, {"src2", &in.Src2}, {"dst", &in.Dst}} {
		b, err := d.br.ReadByte()
		if err != nil {
			return in, d.corrupt(f.name, err)
		}
		if b == 0xff {
			*f.p = isa.NoReg
		} else {
			*f.p = int8(b)
		}
	}
	dpc, err := d.br.svarint()
	if err != nil {
		return in, d.corrupt("pc", err)
	}
	in.PC = d.prevPC + uint64(dpc)
	d.prevPC = in.PC
	if in.Class.IsMem() {
		da, err := d.br.svarint()
		if err != nil {
			return in, d.corrupt("addr", err)
		}
		in.Addr = d.prevAddr + uint64(da)
		d.prevAddr = in.Addr
	}
	if in.Class.IsControl() {
		dt, err := d.br.svarint()
		if err != nil {
			return in, d.corrupt("target", err)
		}
		in.Target = in.PC + uint64(dt)
	}
	if err := in.Validate(); err != nil {
		return in, d.corrupt("record", err)
	}
	d.remain--
	d.index++
	return in, nil
}

func regByte(r int8) byte {
	if r == isa.NoReg {
		return 0xff
	}
	return byte(r)
}
