package version

import (
	"runtime/debug"
	"strings"
	"testing"
)

func withBuildInfo(t *testing.T, bi *debug.BuildInfo, ok bool) {
	t.Helper()
	prev := readBuildInfo
	readBuildInfo = func() (*debug.BuildInfo, bool) { return bi, ok }
	t.Cleanup(func() { readBuildInfo = prev })
}

func TestStringNoBuildInfo(t *testing.T) {
	withBuildInfo(t, nil, false)
	if got := String(); got != "devel" {
		t.Fatalf("String() = %q, want devel", got)
	}
}

func TestStringFull(t *testing.T) {
	withBuildInfo(t, &debug.BuildInfo{
		GoVersion: "go1.24.0",
		Main:      debug.Module{Version: "v1.2.3"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123"},
			{Key: "vcs.modified", Value: "true"},
		},
	}, true)
	got := String()
	for _, want := range []string{"v1.2.3", "0123456789ab+dirty", "go1.24.0"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	if strings.Contains(got, "0123456789abc") {
		t.Errorf("String() = %q: revision not truncated to 12 digits", got)
	}
}

func TestStringDevelFallback(t *testing.T) {
	withBuildInfo(t, &debug.BuildInfo{Main: debug.Module{Version: "(devel)"}}, true)
	if got := String(); !strings.HasPrefix(got, "devel") {
		t.Fatalf("String() = %q, want devel prefix", got)
	}
}

// TestStringReal exercises the un-stubbed path: whatever the test binary's
// build info is, String must return something non-empty and panic-free.
func TestStringReal(t *testing.T) {
	if got := String(); got == "" {
		t.Fatal("String() returned empty")
	}
}
