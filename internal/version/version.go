// Package version reports the build identity of the intervalsim binaries:
// the module version and the VCS revision baked in by the Go toolchain.
// Every CLI exposes it behind -version, and the intervalsimd daemon reports
// it in /healthz, so a deployed binary can always be traced back to the
// commit that built it.
package version

import (
	"fmt"
	"runtime/debug"
)

// readBuildInfo is swapped by tests; the default reads the real build info.
var readBuildInfo = debug.ReadBuildInfo

// String returns a one-line build identity: module version, VCS revision
// (12 hex digits, "+dirty" when the working tree was modified), and the Go
// toolchain. Fields the toolchain did not record are omitted; a binary
// built without module support reports "devel".
func String() string {
	bi, ok := readBuildInfo()
	if !ok {
		return "devel"
	}
	ver := bi.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	out := ver
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		out = fmt.Sprintf("%s (%s)", out, rev)
	}
	if bi.GoVersion != "" {
		out = fmt.Sprintf("%s %s", out, bi.GoVersion)
	}
	return out
}
